package inject

import (
	"math"
	"math/rand"
	"time"

	"dcfail/internal/event"
	"dcfail/internal/fot"
	"dcfail/internal/topo"
)

// HDDBatch emits the recurring hard-drive batch failures that dominate
// Table V. Each day draws a lognormal batch size; sizes below MinSize are
// treated as "no batch today". The affected cohort is one hardware model
// within one datacenter (shared firmware / shared environment); when the
// drawn size exceeds what that cohort can supply, the epidemic is treated
// as model-wide and spreads across datacenters, which is how the rare
// 500+ days (paper: 35 of 1,411 days) arise.
type HDDBatch struct {
	// MeanLog and SigmaLog parameterize the daily batch-size lognormal.
	MeanLog, SigmaLog float64
	// MinSize is the smallest ticket burst considered a batch day.
	MinSize int
	// MaxCohortFrac caps how much of a cohort one epidemic may take out
	// (paper case 1 hit 32% of a product line's servers).
	MaxCohortFrac float64
	// AgeWeight biases victim selection by the server's months in
	// service: the drives that trip a SMART-threshold epidemic first are
	// the ones already marginal, so the fleet's lifecycle shape (Fig. 6a)
	// survives the batch channel. Nil means age-agnostic selection.
	AgeWeight func(ageMonths int) float64
}

// DefaultHDDBatch returns the paper-profile configuration, calibrated so
// the Table V row for HDD (r100 = 55.4%, r200 = 22.5%, r500 = 2.5%)
// emerges at the default fleet scale.
func DefaultHDDBatch() *HDDBatch {
	return &HDDBatch{
		MeanLog: 3.85, SigmaLog: 1.40, MinSize: 15, MaxCohortFrac: 0.6,
		AgeWeight: DefaultHDDAgeWeight,
	}
}

// DefaultHDDAgeWeight mirrors the Fig. 6a drive lifecycle: a mild infant
// bump, a flat floor, then a wear ramp.
func DefaultHDDAgeWeight(ageMonths int) float64 {
	switch {
	case ageMonths < 3:
		return 1.2
	case ageMonths < 6:
		return 1.0
	default:
		return 1.0 + 0.042*float64(ageMonths-5)
	}
}

// Name implements Injector.
func (h *HDDBatch) Name() string { return "hdd-batch" }

// ExpectedPerClass implements Injector.
func (h *HDDBatch) ExpectedPerClass(ctx *Context) map[fot.Component]float64 {
	// Lognormal mean, times the fraction of days that clear MinSize.
	mean := math.Exp(h.MeanLog + h.SigmaLog*h.SigmaLog/2)
	z := (math.Log(float64(h.MinSize)) - h.MeanLog) / h.SigmaLog
	pBatch := 0.5 * math.Erfc(z/math.Sqrt2)
	return map[fot.Component]float64{
		fot.HDD: mean * pBatch * float64(ctx.Days()),
	}
}

// Inject implements Injector.
func (h *HDDBatch) Inject(rng *rand.Rand, ctx *Context) ([]event.Event, error) {
	if err := validateContext(ctx); err != nil {
		return nil, err
	}
	var out []event.Event
	idcs := make([]string, 0, len(ctx.Fleet.Datacenters))
	for i := range ctx.Fleet.Datacenters {
		idcs = append(idcs, ctx.Fleet.Datacenters[i].ID)
	}
	fleetWide := serversByModel(ctx.Fleet, "")
	cooling := coolingLookup(ctx.Fleet)
	days := ctx.Days()
	for d := 0; d < days; d++ {
		size := int(math.Exp(h.MeanLog + h.SigmaLog*rng.NormFloat64()))
		if size < h.MinSize {
			continue
		}
		day := ctx.Start.AddDate(0, 0, d)
		idc := idcs[rng.Intn(len(idcs))]
		byModel := serversByModel(ctx.Fleet, idc)
		model := pickModel(rng, byModel)
		cohort := byModel[model]
		if float64(size) > h.MaxCohortFrac*float64(len(cohort)) {
			// Model-wide firmware epidemic: spread across datacenters.
			cohort = fleetWide[model]
		}
		cap := int(h.MaxCohortFrac * float64(len(cohort)))
		if size > cap {
			size = cap
		}
		if size < h.MinSize {
			continue
		}
		// Tight detection window (case 1: 99% of the batch within six
		// hours, starting in the evening processing window).
		startHour := 16 + rng.Intn(8)
		windowLo := day.Add(time.Duration(startHour) * time.Hour)
		windowHi := windowLo.Add(time.Duration(2+rng.Intn(6)) * time.Hour)
		if windowHi.After(ctx.End) {
			continue
		}
		failureType := "SMARTFail"
		if rng.Float64() < 0.2 {
			failureType = "RaidPdPreErr"
		}
		// Environmental stress trips thermally loaded and worn servers
		// first.
		victimWeight := func(s *topo.Server) float64 {
			c := cooling(s)
			w := c * c
			if h.AgeWeight != nil {
				ageMonths := int(windowLo.Sub(s.DeployTime).Hours() / (24 * 30.44))
				w *= h.AgeWeight(ageMonths)
			}
			return w
		}
		batchID := ctx.NextBatchID()
		for _, s := range sampleWeighted(rng, cohort, size, victimWeight) {
			ts := uniformTime(rng, windowLo, windowHi)
			if !eligible(s, fot.HDD, ts) {
				continue
			}
			out = append(out, event.Event{
				Server: s, Component: fot.HDD,
				Slot: fot.SampleSlot(rng, fot.HDD, s.Inventory[fot.HDD]),
				Type: failureType,
				Time: ts, Cause: event.CauseBatch, BatchID: batchID,
			})
		}
	}
	return out, nil
}

func pickModel(rng *rand.Rand, byModel map[string][]*topo.Server) string {
	// Weight models by cohort size so epidemics hit populated cohorts.
	total := 0
	for _, ss := range byModel {
		total += len(ss)
	}
	if total == 0 {
		return ""
	}
	x := rng.Intn(total)
	// Map iteration order is random; make selection deterministic given
	// the rng by walking models in sorted order.
	for _, m := range sortedModelKeys(byModel) {
		x -= len(byModel[m])
		if x < 0 {
			return m
		}
	}
	return ""
}

func sortedModelKeys(byModel map[string][]*topo.Server) []string {
	keys := make([]string, 0, len(byModel))
	for k := range byModel {
		keys = append(keys, k)
	}
	// Insertion sort: the model set is tiny (5 generations).
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// SASBatch reproduces batch case 2: cohorts of motherboards of one model
// failing through a shared faulty SAS card design, in one or two tight
// one-hour windows.
type SASBatch struct {
	// RatePerYear is the expected number of SAS cohort events per year.
	RatePerYear float64
	// MeanSize is the expected number of motherboards per event (~50).
	MeanSize int
}

// DefaultSASBatch returns the paper-profile configuration.
func DefaultSASBatch() *SASBatch {
	return &SASBatch{RatePerYear: 2, MeanSize: 50}
}

// Name implements Injector.
func (b *SASBatch) Name() string { return "sas-batch" }

// ExpectedPerClass implements Injector.
func (b *SASBatch) ExpectedPerClass(ctx *Context) map[fot.Component]float64 {
	return map[fot.Component]float64{
		fot.Motherboard: b.RatePerYear * ctx.Years() * float64(b.MeanSize),
	}
}

// Inject implements Injector.
func (b *SASBatch) Inject(rng *rand.Rand, ctx *Context) ([]event.Event, error) {
	if err := validateContext(ctx); err != nil {
		return nil, err
	}
	var out []event.Event
	n := poisson(rng, b.RatePerYear*ctx.Years())
	for i := 0; i < n; i++ {
		when := uniformTime(rng, ctx.Start, ctx.End.Add(-24*time.Hour))
		day := when.Truncate(24 * time.Hour)
		idc := ctx.Fleet.Datacenters[rng.Intn(len(ctx.Fleet.Datacenters))].ID
		byModel := serversByModel(ctx.Fleet, idc)
		cohort := byModel[pickModel(rng, byModel)]
		size := b.MeanSize/2 + rng.Intn(b.MeanSize+1)
		if size > len(cohort) {
			size = len(cohort)
		}
		// Two one-hour windows (e.g. 5:00–6:00 and 16:00–17:00 in the
		// paper's case 2).
		w1 := day.Add(time.Duration(3+rng.Intn(6)) * time.Hour)
		w2 := day.Add(time.Duration(14+rng.Intn(6)) * time.Hour)
		batchID := ctx.NextBatchID()
		for j, idx := range sampleDistinct(rng, len(cohort), size) {
			s := cohort[idx]
			lo := w1
			if j%2 == 1 {
				lo = w2
			}
			ts := uniformTime(rng, lo, lo.Add(time.Hour))
			if !eligible(s, fot.Motherboard, ts) || ts.After(ctx.End) {
				continue
			}
			out = append(out, event.Event{
				Server: s, Component: fot.Motherboard,
				Slot: fot.SlotName(fot.Motherboard, 0),
				Type: "MBSASFault",
				Time: ts, Cause: event.CauseBatch, BatchID: batchID,
			})
		}
	}
	return out, nil
}

// poisson draws a small-mean Poisson count (injector event counts).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
