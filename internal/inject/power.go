package inject

import (
	"math/rand"
	"time"

	"dcfail/internal/event"
	"dcfail/internal/fot"
	"dcfail/internal/topo"
)

// PDUOutage reproduces batch case 3: a hidden single point of failure in
// the power-distribution tree takes out every server fed by one PDU
// within a few hours. A fraction of affected servers also report a fan
// failure minutes after the power event — the power→fan causality of
// Table VII.
type PDUOutage struct {
	// RatePerYear is the expected number of PDU incidents per year.
	RatePerYear float64
	// ServersPerPDU is the approximate blast radius (paper: ~100).
	ServersPerPDU int
	// FanFollowProb is the chance a power failure drags a fan ticket
	// along on the same server.
	FanFollowProb float64
}

// DefaultPDUOutage returns the paper-profile configuration.
func DefaultPDUOutage() *PDUOutage {
	return &PDUOutage{RatePerYear: 5, ServersPerPDU: 100, FanFollowProb: 0.07}
}

// Name implements Injector.
func (p *PDUOutage) Name() string { return "pdu-outage" }

// ExpectedPerClass implements Injector.
func (p *PDUOutage) ExpectedPerClass(ctx *Context) map[fot.Component]float64 {
	events := p.RatePerYear * ctx.Years() * float64(p.ServersPerPDU)
	return map[fot.Component]float64{
		fot.Power: events,
		fot.Fan:   events * p.FanFollowProb,
	}
}

// Inject implements Injector.
func (p *PDUOutage) Inject(rng *rand.Rand, ctx *Context) ([]event.Event, error) {
	if err := validateContext(ctx); err != nil {
		return nil, err
	}
	var out []event.Event
	n := poisson(rng, p.RatePerYear*ctx.Years())
	for i := 0; i < n; i++ {
		when := uniformTime(rng, ctx.Start, ctx.End.Add(-24*time.Hour))
		out = append(out, p.oneOutage(rng, ctx, when, p.ServersPerPDU)...)
	}
	return out, nil
}

// oneOutage emits a single PDU incident of roughly `radius` servers
// starting at `when`. Shared by PDUOutage and OperatorMistake.
func (p *PDUOutage) oneOutage(rng *rand.Rand, ctx *Context, when time.Time, radius int) []event.Event {
	idc := ctx.Fleet.Datacenters[rng.Intn(len(ctx.Fleet.Datacenters))].ID
	cohort := pduCohort(ctx.Fleet, idc, rng, radius)
	if len(cohort) == 0 {
		return nil
	}
	// Case 3's window: failures detected between one and ~12 hours.
	windowHi := when.Add(time.Duration(1+rng.Intn(12)) * time.Hour)
	if windowHi.After(ctx.End) {
		windowHi = ctx.End
	}
	batchID := ctx.NextBatchID()
	var out []event.Event
	for _, s := range cohort {
		ts := uniformTime(rng, when, windowHi)
		if !eligible(s, fot.Power, ts) {
			continue
		}
		out = append(out, event.Event{
			Server: s, Component: fot.Power,
			Slot: fot.SampleSlot(rng, fot.Power, s.Inventory[fot.Power]),
			Type: "PSUFail",
			Time: ts, Cause: event.CauseBatch, BatchID: batchID,
		})
		if rng.Float64() < p.FanFollowProb && eligible(s, fot.Fan, ts) {
			out = append(out, event.Event{
				Server: s, Component: fot.Fan,
				Slot:  fot.SampleSlot(rng, fot.Fan, s.Inventory[fot.Fan]),
				Type:  fot.SampleType(rng, fot.Fan),
				Time:  ts.Add(time.Duration(30+rng.Intn(150)) * time.Second),
				Cause: event.CauseCorrelated, BatchID: batchID,
			})
		}
	}
	return out
}

// pduCohort gathers servers from contiguous racks of one datacenter until
// the blast radius is reached — a PDU feeds neighbouring racks.
func pduCohort(fleet *topo.Fleet, idc string, rng *rand.Rand, radius int) []*topo.Server {
	servers := fleet.ServersByIDC(idc)
	if len(servers) == 0 {
		return nil
	}
	byRack := make(map[string][]*topo.Server)
	var racks []string
	for _, s := range servers {
		if _, ok := byRack[s.Rack]; !ok {
			racks = append(racks, s.Rack)
		}
		byRack[s.Rack] = append(byRack[s.Rack], s)
	}
	// Racks were appended in fleet order, which is physical order; wrap
	// around the row end so the blast radius is reached regardless of the
	// starting rack.
	start := rng.Intn(len(racks))
	var cohort []*topo.Server
	for i := 0; i < len(racks) && len(cohort) < radius; i++ {
		cohort = append(cohort, byRack[racks[(start+i)%len(racks)]]...)
	}
	if len(cohort) > radius {
		cohort = cohort[:radius]
	}
	return cohort
}

// OperatorMistake reproduces the one-off incident the paper dates to
// August 2016: an electricity-provider misoperation cut power to a PDU
// and felled hundreds of servers.
type OperatorMistake struct {
	// When is the incident time; the injector is a no-op if it falls
	// outside the study window.
	When time.Time
	// Servers is the blast radius (paper: "hundreds").
	Servers int
}

// DefaultOperatorMistake returns the paper-profile incident.
func DefaultOperatorMistake() *OperatorMistake {
	return &OperatorMistake{
		When:    time.Date(2016, 8, 12, 9, 30, 0, 0, time.UTC),
		Servers: 300,
	}
}

// Name implements Injector.
func (o *OperatorMistake) Name() string { return "operator-mistake" }

// ExpectedPerClass implements Injector.
func (o *OperatorMistake) ExpectedPerClass(ctx *Context) map[fot.Component]float64 {
	if o.When.Before(ctx.Start) || o.When.After(ctx.End) {
		return nil
	}
	return map[fot.Component]float64{fot.Power: float64(o.Servers)}
}

// Inject implements Injector.
func (o *OperatorMistake) Inject(rng *rand.Rand, ctx *Context) ([]event.Event, error) {
	if err := validateContext(ctx); err != nil {
		return nil, err
	}
	if o.When.Before(ctx.Start) || o.When.After(ctx.End) {
		return nil, nil
	}
	helper := &PDUOutage{FanFollowProb: 0.05}
	return helper.oneOutage(rng, ctx, o.When, o.Servers), nil
}
