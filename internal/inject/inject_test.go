package inject

import (
	"math/rand"
	"testing"
	"time"

	"dcfail/internal/event"
	"dcfail/internal/fot"
	"dcfail/internal/topo"
)

func testContext(t *testing.T, seed int64) *Context {
	t.Helper()
	sp := topo.DefaultSpec()
	sp.Datacenters = 4
	sp.RacksPerDC = 8
	sp.PositionsPerRack = 20
	sp.ProductLines = 10
	sp.PreModernDCs = 2
	fleet, err := topo.Build(sp, seed)
	if err != nil {
		t.Fatal(err)
	}
	var next uint64
	return &Context{
		Fleet: fleet,
		Start: sp.StudyStart,
		End:   sp.StudyEnd,
		NextBatchID: func() uint64 {
			next++
			return next
		},
	}
}

func checkEvents(t *testing.T, ctx *Context, events []event.Event) {
	t.Helper()
	for i, e := range events {
		if err := e.Validate(); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if e.Time.Before(ctx.Start) || e.Time.After(ctx.End) {
			t.Fatalf("event %d at %v outside window", i, e.Time)
		}
		if e.Time.Before(e.Server.DeployTime) {
			t.Fatalf("event %d predates deployment", i)
		}
		if e.Server.Inventory[e.Component] == 0 {
			t.Fatalf("event %d on component the server lacks", i)
		}
	}
}

func allInjectors() []Injector {
	return []Injector{
		DefaultHDDBatch(),
		DefaultSASBatch(),
		DefaultPDUOutage(),
		DefaultOperatorMistake(),
		DefaultCorrelatedPairs(),
		DefaultSyncRepeat(),
	}
}

func TestInjectorsEmitValidEvents(t *testing.T) {
	ctx := testContext(t, 1)
	for _, inj := range allInjectors() {
		rng := rand.New(rand.NewSource(7))
		events, err := inj.Inject(rng, ctx)
		if err != nil {
			t.Fatalf("%s: %v", inj.Name(), err)
		}
		if len(events) == 0 {
			t.Errorf("%s emitted nothing", inj.Name())
		}
		checkEvents(t, ctx, events)
	}
}

func TestInjectorsDeterministic(t *testing.T) {
	for _, inj := range allInjectors() {
		ctxA, ctxB := testContext(t, 2), testContext(t, 2)
		a, err := inj.Inject(rand.New(rand.NewSource(3)), ctxA)
		if err != nil {
			t.Fatal(err)
		}
		b, err := inj.Inject(rand.New(rand.NewSource(3)), ctxB)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ %d vs %d", inj.Name(), len(a), len(b))
		}
		for i := range a {
			if !a[i].Time.Equal(b[i].Time) || a[i].Server.HostID != b[i].Server.HostID {
				t.Fatalf("%s: event %d differs across equal-seed runs", inj.Name(), i)
			}
		}
	}
}

func TestInjectorsRejectBadContext(t *testing.T) {
	good := testContext(t, 1)
	bad := []*Context{
		nil,
		{Fleet: nil, Start: good.Start, End: good.End, NextBatchID: good.NextBatchID},
		{Fleet: good.Fleet, Start: good.End, End: good.Start, NextBatchID: good.NextBatchID},
		{Fleet: good.Fleet, Start: good.Start, End: good.End, NextBatchID: nil},
	}
	for _, inj := range allInjectors() {
		for i, ctx := range bad {
			if _, err := inj.Inject(rand.New(rand.NewSource(1)), ctx); err == nil {
				t.Errorf("%s: bad context %d accepted", inj.Name(), i)
			}
		}
	}
}

func TestHDDBatchShape(t *testing.T) {
	ctx := testContext(t, 4)
	inj := DefaultHDDBatch()
	events, err := inj.Inject(rand.New(rand.NewSource(11)), ctx)
	if err != nil {
		t.Fatal(err)
	}
	// All HDD, all batch cause, grouped in tight windows.
	byBatch := map[uint64][]event.Event{}
	for _, e := range events {
		if e.Component != fot.HDD {
			t.Fatalf("non-HDD event from HDD batch: %v", e.Component)
		}
		if e.Cause != event.CauseBatch || e.BatchID == 0 {
			t.Fatal("HDD batch events must carry batch cause and id")
		}
		byBatch[e.BatchID] = append(byBatch[e.BatchID], e)
	}
	if len(byBatch) < 50 {
		t.Fatalf("only %d batches over 4 years, want many", len(byBatch))
	}
	for id, batch := range byBatch {
		lo, hi := batch[0].Time, batch[0].Time
		model := batch[0].Server.Model
		typ := batch[0].Type
		for _, e := range batch[1:] {
			if e.Time.Before(lo) {
				lo = e.Time
			}
			if e.Time.After(hi) {
				hi = e.Time
			}
			if e.Server.Model != model {
				t.Fatalf("batch %d spans models", id)
			}
			if e.Type != typ {
				t.Fatalf("batch %d mixes failure types", id)
			}
		}
		if hi.Sub(lo) > 9*time.Hour {
			t.Errorf("batch %d window %v too wide", id, hi.Sub(lo))
		}
	}
}

func TestHDDBatchDistinctServersWithinBatch(t *testing.T) {
	ctx := testContext(t, 5)
	events, err := DefaultHDDBatch().Inject(rand.New(rand.NewSource(5)), ctx)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]map[uint64]bool{}
	for _, e := range events {
		m := seen[e.BatchID]
		if m == nil {
			m = map[uint64]bool{}
			seen[e.BatchID] = m
		}
		if m[e.Server.HostID] {
			t.Fatalf("server %d appears twice in batch %d", e.Server.HostID, e.BatchID)
		}
		m[e.Server.HostID] = true
	}
}

func TestPDUOutageContiguity(t *testing.T) {
	ctx := testContext(t, 6)
	inj := DefaultPDUOutage()
	events, err := inj.Inject(rand.New(rand.NewSource(6)), ctx)
	if err != nil {
		t.Fatal(err)
	}
	byBatch := map[uint64][]event.Event{}
	for _, e := range events {
		byBatch[e.BatchID] = append(byBatch[e.BatchID], e)
	}
	if len(byBatch) == 0 {
		t.Fatal("no PDU outages in 4 years")
	}
	sawFan := false
	for id, batch := range byBatch {
		idc := batch[0].Server.IDC
		racks := map[string]bool{}
		for _, e := range batch {
			if e.Server.IDC != idc {
				t.Fatalf("outage %d spans datacenters", id)
			}
			racks[e.Server.Rack] = true
			if e.Component == fot.Fan {
				sawFan = true
				if e.Cause != event.CauseCorrelated {
					t.Error("fan-follow event should be CauseCorrelated")
				}
			}
		}
		// ~100 servers over ~14-server racks: a handful of racks.
		if len(racks) > 12 {
			t.Errorf("outage %d touches %d racks, want a contiguous few", id, len(racks))
		}
	}
	if !sawFan {
		t.Error("no power→fan correlated events across all outages")
	}
}

func TestOperatorMistakeWindowGating(t *testing.T) {
	ctx := testContext(t, 7)
	inj := DefaultOperatorMistake()
	events, err := inj.Inject(rand.New(rand.NewSource(7)), ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 100 {
		t.Errorf("operator mistake felled only %d servers", len(events))
	}
	// Outside the window: no events, no error.
	out := *inj
	out.When = ctx.End.AddDate(1, 0, 0)
	events, err = out.Inject(rand.New(rand.NewSource(7)), ctx)
	if err != nil || len(events) != 0 {
		t.Errorf("out-of-window incident: %d events, %v", len(events), err)
	}
	if out.ExpectedPerClass(ctx) != nil {
		t.Error("out-of-window expectation should be nil")
	}
}

func TestCorrelatedPairsStructure(t *testing.T) {
	ctx := testContext(t, 8)
	// The default rate targets fleet scale; crank it so the small test
	// fleet yields enough pairs to measure the misc share.
	inj := &CorrelatedPairs{RatePer10kServerYears: 400, Weights: TableVIWeights()}
	events, err := inj.Inject(rand.New(rand.NewSource(8)), ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(events)%2 != 0 {
		t.Fatalf("pair events should come in twos, got %d", len(events))
	}
	miscPairs, total := 0, 0
	for i := 0; i < len(events); i += 2 {
		a, b := events[i], events[i+1]
		if a.BatchID != b.BatchID {
			t.Fatal("pair halves have different batch ids")
		}
		if a.Server.HostID != b.Server.HostID {
			t.Fatal("pair halves on different servers")
		}
		gap := b.Time.Sub(a.Time)
		if gap < 0 || gap > 24*time.Hour {
			t.Fatalf("pair gap %v outside same-day window", gap)
		}
		total++
		if a.Component == fot.Misc || b.Component == fot.Misc {
			miscPairs++
		}
	}
	if total < 20 {
		t.Fatalf("only %d pairs", total)
	}
	frac := float64(miscPairs) / float64(total)
	if frac < 0.55 || frac > 0.85 {
		t.Errorf("misc-involving share = %.2f, want ≈0.715", frac)
	}
}

func TestSyncRepeatStructure(t *testing.T) {
	ctx := testContext(t, 9)
	inj := DefaultSyncRepeat()
	events, err := inj.Inject(rand.New(rand.NewSource(9)), ctx)
	if err != nil {
		t.Fatal(err)
	}
	byBatch := map[uint64][]event.Event{}
	for _, e := range events {
		if e.Cause != event.CauseRepeat {
			t.Fatal("sync repeat must use CauseRepeat")
		}
		byBatch[e.BatchID] = append(byBatch[e.BatchID], e)
	}
	// The chronic server is the single biggest group.
	var chronic []event.Event
	for _, g := range byBatch {
		if len(g) > len(chronic) {
			chronic = g
		}
	}
	if len(chronic) < 300 {
		t.Fatalf("chronic BBU server has only %d tickets, want ≈400", len(chronic))
	}
	host := chronic[0].Server.HostID
	raid, hdd := 0, 0
	for _, e := range chronic {
		if e.Server.HostID != host {
			t.Fatal("chronic group spans servers")
		}
		switch e.Component {
		case fot.RAIDCard:
			raid++
		case fot.HDD:
			hdd++
		}
	}
	if raid == 0 || hdd == 0 {
		t.Error("chronic server should alternate RAID and HDD tickets")
	}
	// Twin groups: exactly two hosts, same model and line, synchronized.
	twinGroups := 0
	for _, g := range byBatch {
		if len(g) == len(chronic) {
			continue
		}
		hosts := map[uint64]*topo.Server{}
		for _, e := range g {
			hosts[e.Server.HostID] = e.Server
		}
		if len(hosts) != 2 {
			continue
		}
		twinGroups++
		var pair []*topo.Server
		for _, s := range hosts {
			pair = append(pair, s)
		}
		if pair[0].Model != pair[1].Model || pair[0].ProductLine != pair[1].ProductLine {
			t.Error("twins must share model and product line")
		}
	}
	if twinGroups < 10 {
		t.Errorf("only %d twin groups", twinGroups)
	}
}

func TestExpectedPerClassPositive(t *testing.T) {
	ctx := testContext(t, 10)
	for _, inj := range allInjectors() {
		exp := inj.ExpectedPerClass(ctx)
		if len(exp) == 0 {
			t.Errorf("%s: empty expectation", inj.Name())
		}
		for c, v := range exp {
			if v <= 0 {
				t.Errorf("%s: expected[%v] = %g", inj.Name(), c, v)
			}
		}
	}
}

func TestHDDBatchExpectationMatchesRealization(t *testing.T) {
	ctx := testContext(t, 11)
	inj := DefaultHDDBatch()
	exp := inj.ExpectedPerClass(ctx)[fot.HDD]
	got := 0
	const trials = 3
	for s := int64(0); s < trials; s++ {
		events, err := inj.Inject(rand.New(rand.NewSource(100+s)), ctx)
		if err != nil {
			t.Fatal(err)
		}
		got += len(events)
	}
	avg := float64(got) / trials
	// Cohort caps cut the heavy tail: the realization can fall well below
	// the uncapped expectation, but must be the same order of magnitude.
	if avg < exp/6 || avg > exp*1.5 {
		t.Errorf("realized %.0f vs expected %.0f HDD batch events", avg, exp)
	}
}

func TestSampleDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	got := sampleDistinct(rng, 10, 4)
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[int]bool{}
	for _, i := range got {
		if i < 0 || i >= 10 || seen[i] {
			t.Fatalf("bad sample %v", got)
		}
		seen[i] = true
	}
	if got := sampleDistinct(rng, 3, 99); len(got) != 3 {
		t.Errorf("oversample len = %d, want 3", len(got))
	}
}

func TestSampleWeightedRespectsWeights(t *testing.T) {
	ctx := testContext(t, 13)
	servers := ctx.Fleet.ServersByIDC(ctx.Fleet.Datacenters[0].ID)
	if len(servers) < 50 {
		t.Skip("fleet too small")
	}
	// Weight one server overwhelmingly: it must almost always be picked.
	favored := servers[7]
	weight := func(s *topo.Server) float64 {
		if s.HostID == favored.HostID {
			return 1e6
		}
		return 1
	}
	rng := rand.New(rand.NewSource(77))
	hits := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		picked := sampleWeighted(rng, servers, 5, weight)
		if len(picked) != 5 {
			t.Fatalf("picked %d servers, want 5", len(picked))
		}
		seen := map[uint64]bool{}
		for _, s := range picked {
			if seen[s.HostID] {
				t.Fatal("duplicate server in weighted sample")
			}
			seen[s.HostID] = true
		}
		if seen[favored.HostID] {
			hits++
		}
	}
	if hits < trials*95/100 {
		t.Errorf("favored server picked only %d/%d times", hits, trials)
	}
	// k >= n returns everyone.
	if got := sampleWeighted(rng, servers[:3], 99, weight); len(got) != 3 {
		t.Errorf("oversample = %d, want 3", len(got))
	}
}

func TestCoolingLookup(t *testing.T) {
	ctx := testContext(t, 14)
	lookup := coolingLookup(ctx.Fleet)
	for i := range ctx.Fleet.Servers[:50] {
		s := &ctx.Fleet.Servers[i]
		want := 1.0
		for d := range ctx.Fleet.Datacenters {
			if ctx.Fleet.Datacenters[d].ID == s.IDC {
				want = ctx.Fleet.Datacenters[d].CoolingAt(s.Position)
			}
		}
		if got := lookup(s); got != want {
			t.Fatalf("cooling for %d = %g, want %g", s.HostID, got, want)
		}
	}
	// Unknown datacenter falls back to 1.
	ghost := topo.Server{IDC: "nope", Position: 3}
	if got := lookup(&ghost); got != 1 {
		t.Errorf("ghost cooling = %g, want 1", got)
	}
}

func TestDefaultHDDAgeWeightShape(t *testing.T) {
	if !(DefaultHDDAgeWeight(0) > DefaultHDDAgeWeight(4)) {
		t.Error("infant bump missing")
	}
	if !(DefaultHDDAgeWeight(36) > DefaultHDDAgeWeight(12)) {
		t.Error("wear ramp missing")
	}
	if DefaultHDDAgeWeight(-3) != DefaultHDDAgeWeight(0) {
		t.Error("negative ages should clamp to the infant band")
	}
}
