// Package event defines the raw component-failure event that flows from
// the generators (internal/fleetgen, internal/inject) into the FMS
// (internal/fms), which turns events into tickets. Events carry a
// ground-truth Cause tag that the FMS never copies into tickets — analyses
// must rediscover correlation structure from ticket data alone, exactly as
// the paper had to.
package event

import (
	"fmt"
	"sort"
	"time"

	"dcfail/internal/fot"
	"dcfail/internal/topo"
)

// Cause is the generating mechanism of an event (ground truth only).
type Cause int

const (
	// CauseBaseline is an independent hazard-driven failure.
	CauseBaseline Cause = iota + 1
	// CauseBatch is part of an injected batch event (firmware epidemic,
	// PDU outage, operator mistake, SAS-card cohort...).
	CauseBatch
	// CauseCorrelated is one half of a correlated multi-component
	// failure on a single server (paper §V-B).
	CauseCorrelated
	// CauseRepeat is a recurrence of an earlier, ineffectively repaired
	// failure (paper §III-D, §V-C).
	CauseRepeat
)

func (c Cause) String() string {
	switch c {
	case CauseBaseline:
		return "baseline"
	case CauseBatch:
		return "batch"
	case CauseCorrelated:
		return "correlated"
	case CauseRepeat:
		return "repeat"
	default:
		return fmt.Sprintf("Cause(%d)", int(c))
	}
}

// Event is one raw component failure, before FMS processing.
type Event struct {
	Server    *topo.Server
	Component fot.Component
	// Slot identifies the failing component instance (e.g. "sdc"); it is
	// what distinguishes a repeating failure from a sibling part failing.
	Slot string
	// Type is the failure-type name (from the fot catalogue).
	Type string
	// Time is the detection-basis timestamp. Generators already place it
	// according to the workload/detection model; the FMS only layers a
	// small agent latency on top.
	Time  time.Time
	Cause Cause
	// BatchID groups events of one injected batch (0 otherwise).
	BatchID uint64
}

// Validate reports structural problems with the event.
func (e Event) Validate() error {
	switch {
	case e.Server == nil:
		return fmt.Errorf("event: nil server")
	case e.Type == "":
		return fmt.Errorf("event: empty failure type")
	case e.Time.IsZero():
		return fmt.Errorf("event: zero time")
	case e.Cause < CauseBaseline || e.Cause > CauseRepeat:
		return fmt.Errorf("event: invalid cause %d", int(e.Cause))
	}
	if _, ok := fot.LookupType(e.Component, e.Type); !ok {
		return fmt.Errorf("event: type %q not in %v catalogue", e.Type, e.Component)
	}
	return nil
}

// SortByTime orders events chronologically in place.
func SortByTime(events []Event) {
	sort.Slice(events, func(i, j int) bool {
		return events[i].Time.Before(events[j].Time)
	})
}
