package event

import (
	"testing"
	"time"

	"dcfail/internal/fot"
	"dcfail/internal/topo"
)

func testServer() *topo.Server {
	return &topo.Server{
		HostID:     1,
		IDC:        "dc01",
		DeployTime: time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC),
		Inventory:  map[fot.Component]int{fot.HDD: 12},
		Frailty:    1,
	}
}

func validEvent() Event {
	return Event{
		Server:    testServer(),
		Component: fot.HDD,
		Slot:      "sdb",
		Type:      "SMARTFail",
		Time:      time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC),
		Cause:     CauseBaseline,
	}
}

func TestEventValidate(t *testing.T) {
	if err := validEvent().Validate(); err != nil {
		t.Fatalf("valid event rejected: %v", err)
	}
	bad := []func(*Event){
		func(e *Event) { e.Server = nil },
		func(e *Event) { e.Type = "" },
		func(e *Event) { e.Time = time.Time{} },
		func(e *Event) { e.Cause = 0 },
		func(e *Event) { e.Cause = Cause(99) },
		func(e *Event) { e.Type = "NotARealType" },
		func(e *Event) { e.Component = fot.Memory }, // SMARTFail is not a memory type
	}
	for i, mutate := range bad {
		e := validEvent()
		mutate(&e)
		if err := e.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestCauseString(t *testing.T) {
	for c, want := range map[Cause]string{
		CauseBaseline:   "baseline",
		CauseBatch:      "batch",
		CauseCorrelated: "correlated",
		CauseRepeat:     "repeat",
	} {
		if got := c.String(); got != want {
			t.Errorf("Cause(%d).String() = %q, want %q", int(c), got, want)
		}
	}
	if Cause(42).String() == "" {
		t.Error("unknown cause should render its value")
	}
}

func TestSortByTime(t *testing.T) {
	base := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	events := make([]Event, 0, 10)
	for i := 9; i >= 0; i-- {
		e := validEvent()
		e.Time = base.Add(time.Duration(i) * time.Hour)
		events = append(events, e)
	}
	SortByTime(events)
	for i := 1; i < len(events); i++ {
		if events[i].Time.Before(events[i-1].Time) {
			t.Fatal("not sorted")
		}
	}
}
