package replica

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dcfail/internal/fot"
	"dcfail/internal/serve"
	"dcfail/internal/wire"
)

// ServerOptions tunes the primary-side stream server.
type ServerOptions struct {
	// Heartbeat is how often an idle stream re-sends the tip as a
	// KindHello, so replicas can tell a quiet primary from a black-holed
	// link by read deadline (default 1s).
	Heartbeat time.Duration
	// WriteTimeout bounds each frame write; a replica that stops reading
	// is severed instead of wedging the stream goroutine (default 10s).
	WriteTimeout time.Duration
	// Now stamps write deadlines (nil means time.Now), injectable for
	// deterministic tests.
	Now func() time.Time
	// DisableBinary refuses binary codec negotiation: syncs offering
	// wire.CodecBinV1 are still served, but as NL-JSON. Used to exercise
	// the fallback path and to mimic old primaries.
	DisableBinary bool
}

// Server publishes a serve.State's ticket log and epoch markers to any
// number of replica subscribers. One goroutine per subscriber streams
// rows from the resume position and wakes on every fold via State.Watch.
type Server struct {
	state *serve.State
	ln    net.Listener
	opts  ServerOptions
	now   func() time.Time

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	wg        sync.WaitGroup
	closing   chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// NewServer starts a replication stream server over st on addr (use
// "127.0.0.1:0" for an ephemeral port). Callers must Close it.
func NewServer(addr string, st *serve.State, opts ServerOptions) (*Server, error) {
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = time.Second
	}
	if opts.WriteTimeout <= 0 {
		opts.WriteTimeout = 10 * time.Second
	}
	s := &Server{
		state:   st,
		opts:    opts,
		now:     opts.Now,
		conns:   make(map[net.Conn]struct{}),
		closing: make(chan struct{}),
	}
	if s.now == nil {
		//lint:ignore walltime injection-point default; ServerOptions.Now overrides the clock used for write deadlines
		s.now = time.Now
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("replica: listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address replicas dial.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, severs every subscriber stream, and waits for
// the stream goroutines to exit. Idempotent.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.closing)
		err := s.ln.Close()
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
		s.closeErr = err
	})
	return s.closeErr
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closing:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		s.wg.Add(1)
		go s.stream(conn)
	}
}

// stream serves one subscriber: read the resume request, then push rows
// and epoch markers until the connection dies or the server closes.
func (s *Server) stream(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	w := bufio.NewWriter(conn)
	send := func(m *Message) bool {
		line, err := encode(m)
		if err != nil {
			return false
		}
		conn.SetWriteDeadline(s.now().Add(s.opts.WriteTimeout))
		if _, err := w.Write(line); err != nil {
			return false
		}
		return w.Flush() == nil
	}

	// The one request: the replica's resume position.
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), MaxFrameBytes)
	conn.SetReadDeadline(s.now().Add(s.opts.WriteTimeout))
	if !sc.Scan() {
		return
	}
	var req Message
	if err := json.Unmarshal(sc.Bytes(), &req); err != nil || req.Kind != KindSync || req.Row < 0 {
		send(&Message{Kind: KindError, Error: "replica: malformed sync request"})
		return
	}
	tip := s.state.Current()
	if req.Row > tip.Tickets() || req.Epoch > tip.Epoch() {
		// The subscriber holds more history than this primary — a
		// misconfiguration (or a primary restarted with less data) that
		// resending rows cannot fix.
		send(&Message{Kind: KindError,
			Error: fmt.Sprintf("replica: subscriber at (epoch %d, row %d) is ahead of primary (epoch %d, row %d)",
				req.Epoch, req.Row, tip.Epoch(), tip.Tickets())})
		return
	}

	// Codec negotiation: the pick rides on the first (JSON) hello; every
	// frame after that is binary when the offer was accepted.
	codec := ""
	if !s.opts.DisableBinary {
		for _, offer := range req.Codecs {
			if offer == wire.CodecBinV1 {
				codec = offer
				break
			}
		}
	}
	binary := codec == wire.CodecBinV1
	var enc *wire.Encoder
	var frame []byte
	if binary {
		enc = wire.NewEncoder()
	}
	sendBin := func(b []byte) bool {
		conn.SetWriteDeadline(s.now().Add(s.opts.WriteTimeout))
		if _, err := w.Write(b); err != nil {
			return false
		}
		return w.Flush() == nil
	}
	sendRow := func(row int, t *fot.Ticket) bool {
		if binary {
			frame = enc.AppendRow(frame[:0], row, t)
			return sendBin(frame)
		}
		m, err := rowMessage(row, *t)
		if err != nil {
			send(&Message{Kind: KindError, Error: err.Error()})
			return false
		}
		return send(m)
	}
	sendEpoch := func(epoch uint64, rows int, foldedAt time.Time) bool {
		if binary {
			frame = wire.AppendEpoch(frame[:0], epoch, rows, foldedAt)
			return sendBin(frame)
		}
		return send(&Message{Kind: KindEpoch, Epoch: epoch, Rows: rows, FoldedAt: foldedAt})
	}
	sendHello := func(epoch uint64, rows int) bool {
		if binary {
			frame = wire.AppendHello(frame[:0], epoch, rows)
			return sendBin(frame)
		}
		return send(&Message{Kind: KindHello, Epoch: epoch, Rows: rows})
	}
	sendError := func(msg string) {
		if binary {
			frame = wire.AppendError(frame[:0], "", msg)
			sendBin(frame)
			return
		}
		send(&Message{Kind: KindError, Error: msg})
	}

	watch := s.state.Watch()
	defer s.state.Unwatch(watch)

	if !send(&Message{Kind: KindHello, Epoch: tip.Epoch(), Rows: tip.Tickets(), Codec: codec}) {
		return
	}

	sentRows, sentEpoch := req.Row, req.Epoch
	heartbeat := time.NewTicker(s.opts.Heartbeat)
	defer heartbeat.Stop()
	for {
		snap := s.state.Current()
		if snap.Tickets() > sentRows {
			rows, err := s.state.Rows(sentRows, snap.Tickets())
			if err != nil {
				sendError(err.Error())
				return
			}
			for i := range rows {
				if !sendRow(sentRows+i, &rows[i]) {
					return
				}
			}
			sentRows = snap.Tickets()
		}
		if snap.Epoch() > sentEpoch {
			// One marker per observed fold; collapsed intermediate epochs
			// are fine — the replica jumps straight to this one.
			if !sendEpoch(snap.Epoch(), snap.Tickets(), snap.FoldedAt()) {
				return
			}
			sentEpoch = snap.Epoch()
		}
		select {
		case <-watch:
		case <-heartbeat.C:
			cur := s.state.Current()
			if !sendHello(cur.Epoch(), cur.Tickets()) {
				return
			}
		case <-s.closing:
			return
		}
	}
}
