// Package replica streams a primary serve.Daemon's epoch history to
// read-only serving replicas over the fmsnet wire idiom (newline-
// delimited JSON over TCP), so the query tier survives the loss of any
// single serving process.
//
// The unit of replication is the primary's append-only ticket log plus
// its epoch markers. A replica subscribes with the (epoch, row) position
// it already holds; the primary streams every later row as a CRC-checked
// frame and, after the rows of each published fold, an epoch marker
// naming (epoch, row count, fold time). The replica folds exactly the
// marker's prefix under the marker's epoch number (serve.State.FoldTo),
// which makes every replica's /report for epoch E byte-identical to the
// primary's — and to report.SerialReference over that prefix.
//
// Delivery is at-least-once: a reconnect may replay rows the replica
// already consumed, and the replica dedups by row index the same way the
// collector dedups agent (AgentID, Seq) pairs. A CRC mismatch or a row
// gap drops the connection; the resume position makes the retry cheap.
package replica

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"time"

	"dcfail/internal/fot"
)

// Message kinds on the replication stream.
const (
	// KindSync is the replica's (only) request: resume from (epoch, row).
	KindSync = "sync"
	// KindHello announces the primary's tip; re-sent as a heartbeat so a
	// black-holed connection is detectable by read deadline.
	KindHello = "hello"
	// KindRow carries one log row with its CRC.
	KindRow = "row"
	// KindEpoch marks a published fold: rows [0, Rows) form epoch Epoch.
	KindEpoch = "epoch"
	// KindError is a terminal primary-side rejection.
	KindError = "error"
)

// MaxFrameBytes bounds one replication frame on the wire, mirroring
// fmsnet.MaxFrameBytes.
const MaxFrameBytes = 1 << 20

// Message is the single envelope both directions use; Kind picks the
// populated fields.
type Message struct {
	Kind string `json:"kind"`
	// Epoch: resume point (KindSync), tip (KindHello), or the published
	// fold (KindEpoch).
	Epoch uint64 `json:"epoch,omitempty"`
	// Row is the log index of a KindRow frame, and the resume row on
	// KindSync (first row the replica does NOT have).
	Row int `json:"row,omitempty"`
	// Rows is the log length: the tip's on KindHello, the epoch's on
	// KindEpoch.
	Rows int `json:"rows,omitempty"`
	// Ticket is the row payload (fot.MarshalJSONLine bytes).
	Ticket json.RawMessage `json:"ticket,omitempty"`
	// CRC is crc32.ChecksumIEEE over Ticket.
	CRC uint32 `json:"crc,omitempty"`
	// FoldedAt is the primary's fold timestamp (KindEpoch), so replicas
	// publish epochs with the primary's clock, not their own.
	FoldedAt time.Time `json:"folded_at,omitempty"`
	// Error carries the rejection text on KindError.
	Error string `json:"error,omitempty"`
	// Codecs offers wire codecs in preference order on KindSync (e.g.
	// wire.CodecBinV1). Old primaries ignore the field and stream JSON.
	Codecs []string `json:"codecs,omitempty"`
	// Codec is the primary's pick, carried on the first KindHello (which
	// is always a JSON line so the handshake is codec-neutral). Empty
	// means the stream stays NL-JSON; wire.CodecBinV1 means every frame
	// after that hello is length-prefixed binary in primary→replica
	// direction.
	Codec string `json:"codec,omitempty"`
}

// encode renders one frame as a JSON line.
func encode(m *Message) ([]byte, error) {
	line, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("replica: encode %s: %w", m.Kind, err)
	}
	return append(line, '\n'), nil
}

// rowMessage builds a CRC-stamped row frame.
func rowMessage(row int, t fot.Ticket) (*Message, error) {
	payload, err := fot.MarshalJSONLine(t)
	if err != nil {
		return nil, fmt.Errorf("replica: marshal row %d: %w", row, err)
	}
	return &Message{
		Kind:   KindRow,
		Row:    row,
		Ticket: payload,
		CRC:    crc32.ChecksumIEEE(payload),
	}, nil
}

// decodeRow verifies the CRC and decodes the ticket of a KindRow frame.
func decodeRow(m *Message) (fot.Ticket, error) {
	if got := crc32.ChecksumIEEE(m.Ticket); got != m.CRC {
		return fot.Ticket{}, fmt.Errorf("replica: row %d crc mismatch: frame says %08x, payload is %08x", m.Row, m.CRC, got)
	}
	t, err := fot.UnmarshalJSONLine(m.Ticket)
	if err != nil {
		return fot.Ticket{}, fmt.Errorf("replica: row %d: %w", m.Row, err)
	}
	return t, nil
}
