package replica

import (
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"dcfail/internal/serve"
)

// TestStopJoinsSyncer pins the goroutine-ownership contract the
// goroleak rule encodes: Stop severs the stream, waits for the catch-up
// goroutine to exit, and no reconnect is ever attempted afterwards.
func TestStopJoinsSyncer(t *testing.T) {
	var dials atomic.Int64
	dialed := make(chan struct{}, 1)
	dial := func(addr string) (net.Conn, error) {
		dials.Add(1)
		select {
		case dialed <- struct{}{}:
		default:
		}
		client, server := net.Pipe()
		// A silent primary: read and discard the subscribe request, send
		// nothing back, so the syncer parks in its stream read.
		go io.Copy(io.Discard, server)
		return client, nil
	}

	st := serve.NewState(nil, 0)
	s := NewSyncer(st, SyncerOptions{
		Addr:     "test:0",
		Dial:     dial,
		RetryMin: 5 * time.Millisecond,
		RetryMax: 10 * time.Millisecond,
	})
	s.Start()

	select {
	case <-dialed:
	case <-time.After(2 * time.Second):
		t.Fatal("syncer never dialed the primary")
	}

	stopped := make(chan struct{})
	go func() {
		s.Stop()
		close(stopped)
	}()
	select {
	case <-stopped:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop did not join the syncer goroutine")
	}

	// Joined means gone: many retry intervals after Stop, the dial count
	// must not move — a live loop would be reconnecting.
	n := dials.Load()
	time.Sleep(60 * time.Millisecond)
	if got := dials.Load(); got != n {
		t.Fatalf("syncer kept reconnecting after Stop: %d dials grew to %d", n, got)
	}
}
