package replica

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dcfail/internal/fot"
	"dcfail/internal/serve"
)

// SyncerOptions tunes a replica's catch-up loop.
type SyncerOptions struct {
	// Addr is the primary's replication address (NewServer's listener).
	Addr string
	// Dial overrides how the primary is reached — tests route through a
	// faultnet.Proxy here. Nil dials Addr over TCP with a 5s timeout.
	Dial func(addr string) (net.Conn, error)
	// RetryMin/RetryMax bound the reconnect backoff (defaults 50ms / 2s).
	// The backoff is deterministic (doubling, no jitter): replicas of one
	// primary are few, and determinism keeps chaos tests replayable.
	RetryMin, RetryMax time.Duration
	// StallTimeout is the per-read deadline. The primary heartbeats every
	// ServerOptions.Heartbeat, so a read that outlives this is a stalled
	// or black-holed link, not an idle one (default 5s; keep it a few
	// multiples of the primary's heartbeat).
	StallTimeout time.Duration
	// Now stamps deadlines and lag bookkeeping (nil means time.Now).
	Now func() time.Time
}

// SyncStats is a snapshot of the syncer's lifetime counters.
type SyncStats struct {
	Rows        uint64 `json:"rows"`         // rows accepted into the local log
	Dups        uint64 `json:"dups"`         // at-least-once replays skipped by row index
	CRCFailures uint64 `json:"crc_failures"` // frames rejected by checksum
	Reconnects  uint64 `json:"reconnects"`   // times the stream was re-established
	Folds       uint64 `json:"folds"`        // epoch markers applied
	Connected   bool   `json:"connected"`
	TipEpoch    uint64 `json:"tip_epoch"` // newest primary epoch heard of
	LastError   string `json:"last_error,omitempty"`
}

// Syncer keeps one serve.State converged with a primary's replication
// stream: it dials, resumes from the local (epoch, row) position, dedups
// replayed rows, verifies CRCs, folds each epoch marker via FoldTo, and
// reconnects with bounded backoff whenever the link fails. Lag() feeds
// the daemon's /healthz so a stuck replica degrades instead of serving
// silently stale epochs forever.
type Syncer struct {
	state *serve.State
	opts  SyncerOptions
	now   func() time.Time

	rows        atomic.Uint64
	dups        atomic.Uint64
	crcFailures atomic.Uint64
	reconnects  atomic.Uint64
	folds       atomic.Uint64
	connected   atomic.Bool
	tipEpoch    atomic.Uint64
	behindSince atomic.Int64 // unix nanos; 0 = caught up
	lastErr     atomic.Pointer[string]

	mu        sync.Mutex
	conn      net.Conn // live connection, severed by Stop
	wg        sync.WaitGroup
	closing   chan struct{}
	closeOnce sync.Once

	// pending holds CRC-verified rows past the last fold, awaiting their
	// epoch marker. It is owned by the run goroutine and deliberately
	// survives reconnects: the resume row is folded + len(pending), so a
	// flapping link makes monotonic row progress instead of re-pulling
	// the whole epoch suffix every connection (which livelocks when the
	// flap interval is shorter than one epoch's transfer time).
	pending []fot.Ticket
}

// NewSyncer builds a syncer folding into st. Call Start to begin.
func NewSyncer(st *serve.State, opts SyncerOptions) *Syncer {
	if opts.Dial == nil {
		opts.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	if opts.RetryMin <= 0 {
		opts.RetryMin = 50 * time.Millisecond
	}
	if opts.RetryMax < opts.RetryMin {
		opts.RetryMax = 2 * time.Second
	}
	if opts.StallTimeout <= 0 {
		opts.StallTimeout = 5 * time.Second
	}
	s := &Syncer{state: st, opts: opts, now: opts.Now, closing: make(chan struct{})}
	if s.now == nil {
		//lint:ignore walltime injection-point default; SyncerOptions.Now overrides the clock used for deadlines and lag
		s.now = time.Now
	}
	return s
}

// Start launches the catch-up loop. Call once; Stop ends it.
func (s *Syncer) Start() {
	s.wg.Add(1)
	go s.run()
}

// Stop severs the stream and waits for the loop to exit. Idempotent.
func (s *Syncer) Stop() {
	s.closeOnce.Do(func() { close(s.closing) })
	s.mu.Lock()
	if s.conn != nil {
		s.conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Stats returns the lifetime counters.
func (s *Syncer) Stats() SyncStats {
	st := SyncStats{
		Rows:        s.rows.Load(),
		Dups:        s.dups.Load(),
		CRCFailures: s.crcFailures.Load(),
		Reconnects:  s.reconnects.Load(),
		Folds:       s.folds.Load(),
		Connected:   s.connected.Load(),
		TipEpoch:    s.tipEpoch.Load(),
	}
	if msg := s.lastErr.Load(); msg != nil {
		st.LastError = *msg
	}
	return st
}

// Lag reports how long this replica has been behind the newest known
// primary state: zero while connected and caught up, else the time since
// it fell behind (a disconnect or a tip announcement it has not reached).
// Wire it into serve.Daemon.SetLagProbe so /healthz degrades with it.
func (s *Syncer) Lag() time.Duration {
	since := s.behindSince.Load()
	if since == 0 {
		return 0
	}
	return time.Duration(s.now().UnixNano() - since)
}

// markBehind stamps the fell-behind time if not already behind.
func (s *Syncer) markBehind() {
	s.behindSince.CompareAndSwap(0, s.now().UnixNano())
}

// reviseLag re-evaluates behind/caught-up against the known tip.
func (s *Syncer) reviseLag() {
	if s.tipEpoch.Load() > s.state.Current().Epoch() {
		s.markBehind()
	} else if s.connected.Load() {
		s.behindSince.Store(0)
	}
}

func (s *Syncer) fail(err error) {
	msg := err.Error()
	s.lastErr.Store(&msg)
}

func (s *Syncer) run() {
	defer s.wg.Done()
	backoff := s.opts.RetryMin
	for attempt := 0; ; attempt++ {
		select {
		case <-s.closing:
			return
		default:
		}
		if attempt > 0 {
			s.reconnects.Add(1)
			select {
			case <-time.After(backoff):
			case <-s.closing:
				return
			}
			backoff *= 2
			if backoff > s.opts.RetryMax {
				backoff = s.opts.RetryMax
			}
		}
		conn, err := s.opts.Dial(s.opts.Addr)
		if err != nil {
			s.markBehind()
			s.fail(err)
			continue
		}
		s.mu.Lock()
		s.conn = conn
		s.mu.Unlock()
		progressed, err := s.stream(conn)
		conn.Close()
		s.mu.Lock()
		s.conn = nil
		s.mu.Unlock()
		s.connected.Store(false)
		s.markBehind()
		if err != nil {
			s.fail(err)
		}
		if progressed {
			backoff = s.opts.RetryMin
		}
	}
}

// stream runs one connection: subscribe from the resume position (the
// fold boundary plus any retained pending rows), then apply rows and
// markers until the link errors. It reports whether any message was
// applied, so the caller resets backoff only on progress.
func (s *Syncer) stream(conn net.Conn) (progressed bool, err error) {
	local := s.state.Current()
	folded := local.Tickets()
	nextRow := folded + len(s.pending)
	sub, err := encode(&Message{Kind: KindSync, Epoch: local.Epoch(), Row: nextRow})
	if err != nil {
		return false, err
	}
	conn.SetWriteDeadline(s.now().Add(s.opts.StallTimeout))
	if _, err := conn.Write(sub); err != nil {
		return false, fmt.Errorf("replica: subscribe: %w", err)
	}

	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), MaxFrameBytes)

	for {
		conn.SetReadDeadline(s.now().Add(s.opts.StallTimeout))
		if !sc.Scan() {
			if serr := sc.Err(); serr != nil {
				return progressed, fmt.Errorf("replica: stream read: %w", serr)
			}
			return progressed, fmt.Errorf("replica: primary closed the stream")
		}
		var m Message
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			return progressed, fmt.Errorf("replica: decode frame: %w", err)
		}
		switch m.Kind {
		case KindHello:
			// First hello doubles as the connection-established signal;
			// later ones are heartbeats that refresh the tip.
			s.connected.Store(true)
			progressed = true
			if m.Epoch > s.tipEpoch.Load() {
				s.tipEpoch.Store(m.Epoch)
			}
			s.reviseLag()
		case KindRow:
			if m.Row < nextRow {
				// At-least-once replay after a reconnect: same dedup role
				// as the collector's (AgentID, Seq) index, keyed by the
				// total order the log already gives us.
				s.dups.Add(1)
				continue
			}
			if m.Row > nextRow {
				return progressed, fmt.Errorf("replica: row gap: got %d, want %d", m.Row, nextRow)
			}
			t, err := decodeRow(&m)
			if err != nil {
				s.crcFailures.Add(1)
				return progressed, err
			}
			s.pending = append(s.pending, t)
			nextRow++
			s.rows.Add(1)
			progressed = true
		case KindEpoch:
			if m.Epoch > s.tipEpoch.Load() {
				s.tipEpoch.Store(m.Epoch)
			}
			if m.Epoch <= s.state.Current().Epoch() {
				continue // marker replay; the fold already happened
			}
			if m.Rows > nextRow {
				return progressed, fmt.Errorf("replica: epoch %d needs %d rows, have %d", m.Epoch, m.Rows, nextRow)
			}
			take := m.Rows - folded
			if take < 0 {
				return progressed, fmt.Errorf("replica: epoch %d rows %d behind local log %d", m.Epoch, m.Rows, folded)
			}
			if _, err := s.state.FoldTo(s.pending[:take], m.Epoch, m.FoldedAt); err != nil {
				return progressed, err
			}
			s.pending = s.pending[take:]
			folded = m.Rows
			s.folds.Add(1)
			progressed = true
			s.reviseLag()
		case KindError:
			return progressed, fmt.Errorf("replica: primary rejected stream: %s", m.Error)
		default:
			return progressed, fmt.Errorf("replica: unknown frame kind %q", m.Kind)
		}
	}
}
