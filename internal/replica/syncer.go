package replica

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dcfail/internal/fot"
	"dcfail/internal/serve"
	"dcfail/internal/wire"
)

// SyncerOptions tunes a replica's catch-up loop.
type SyncerOptions struct {
	// Addr is the primary's replication address (NewServer's listener).
	Addr string
	// Dial overrides how the primary is reached — tests route through a
	// faultnet.Proxy here. Nil dials Addr over TCP with a 5s timeout.
	Dial func(addr string) (net.Conn, error)
	// RetryMin/RetryMax bound the reconnect backoff (defaults 50ms / 2s).
	// The backoff is deterministic (doubling, no jitter): replicas of one
	// primary are few, and determinism keeps chaos tests replayable.
	RetryMin, RetryMax time.Duration
	// StallTimeout is the per-read deadline. The primary heartbeats every
	// ServerOptions.Heartbeat, so a read that outlives this is a stalled
	// or black-holed link, not an idle one (default 5s; keep it a few
	// multiples of the primary's heartbeat).
	StallTimeout time.Duration
	// Now stamps deadlines and lag bookkeeping (nil means time.Now).
	Now func() time.Time
	// Codec selects the stream codec. "" and "binary" offer the dense
	// binary row codec at subscribe time, falling back to NL-JSON
	// transparently against primaries that decline or predate it;
	// "json" forces legacy NL-JSON without offering.
	Codec string
}

// SyncStats is a snapshot of the syncer's lifetime counters.
type SyncStats struct {
	Rows        uint64 `json:"rows"`         // rows accepted into the local log
	Dups        uint64 `json:"dups"`         // at-least-once replays skipped by row index
	CRCFailures uint64 `json:"crc_failures"` // frames rejected by checksum
	Reconnects  uint64 `json:"reconnects"`   // times the stream was re-established
	Folds       uint64 `json:"folds"`        // epoch markers applied
	Connected   bool   `json:"connected"`
	TipEpoch    uint64 `json:"tip_epoch"` // newest primary epoch heard of
	LastError   string `json:"last_error,omitempty"`
	// Codec is what the most recent successful handshake negotiated:
	// wire.CodecBinV1 or "json" ("" before the first connection).
	Codec string `json:"codec,omitempty"`
}

// Syncer keeps one serve.State converged with a primary's replication
// stream: it dials, resumes from the local (epoch, row) position, dedups
// replayed rows, verifies CRCs, folds each epoch marker via FoldTo, and
// reconnects with bounded backoff whenever the link fails. Lag() feeds
// the daemon's /healthz so a stuck replica degrades instead of serving
// silently stale epochs forever.
type Syncer struct {
	state *serve.State
	opts  SyncerOptions
	now   func() time.Time

	rows        atomic.Uint64
	dups        atomic.Uint64
	crcFailures atomic.Uint64
	reconnects  atomic.Uint64
	folds       atomic.Uint64
	connected   atomic.Bool
	tipEpoch    atomic.Uint64
	behindSince atomic.Int64 // unix nanos; 0 = caught up
	lastErr     atomic.Pointer[string]
	lastCodec   atomic.Pointer[string]

	mu        sync.Mutex
	conn      net.Conn // live connection, severed by Stop
	wg        sync.WaitGroup
	closing   chan struct{}
	closeOnce sync.Once

	// pending holds CRC-verified rows past the last fold, awaiting their
	// epoch marker. It is owned by the run goroutine and deliberately
	// survives reconnects: the resume row is folded + len(pending), so a
	// flapping link makes monotonic row progress instead of re-pulling
	// the whole epoch suffix every connection (which livelocks when the
	// flap interval is shorter than one epoch's transfer time).
	pending []fot.Ticket
}

// NewSyncer builds a syncer folding into st. Call Start to begin.
func NewSyncer(st *serve.State, opts SyncerOptions) *Syncer {
	if opts.Dial == nil {
		opts.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	if opts.RetryMin <= 0 {
		opts.RetryMin = 50 * time.Millisecond
	}
	if opts.RetryMax < opts.RetryMin {
		opts.RetryMax = 2 * time.Second
	}
	if opts.StallTimeout <= 0 {
		opts.StallTimeout = 5 * time.Second
	}
	s := &Syncer{state: st, opts: opts, now: opts.Now, closing: make(chan struct{})}
	if s.now == nil {
		//lint:ignore walltime injection-point default; SyncerOptions.Now overrides the clock used for deadlines and lag
		s.now = time.Now
	}
	return s
}

// Start launches the catch-up loop. Call once; Stop ends it.
func (s *Syncer) Start() {
	s.wg.Add(1)
	go s.run()
}

// Stop severs the stream and waits for the loop to exit. Idempotent.
func (s *Syncer) Stop() {
	s.closeOnce.Do(func() { close(s.closing) })
	s.mu.Lock()
	if s.conn != nil {
		s.conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Stats returns the lifetime counters.
func (s *Syncer) Stats() SyncStats {
	st := SyncStats{
		Rows:        s.rows.Load(),
		Dups:        s.dups.Load(),
		CRCFailures: s.crcFailures.Load(),
		Reconnects:  s.reconnects.Load(),
		Folds:       s.folds.Load(),
		Connected:   s.connected.Load(),
		TipEpoch:    s.tipEpoch.Load(),
	}
	if msg := s.lastErr.Load(); msg != nil {
		st.LastError = *msg
	}
	if c := s.lastCodec.Load(); c != nil {
		st.Codec = *c
	}
	return st
}

// Lag reports how long this replica has been behind the newest known
// primary state: zero while connected and caught up, else the time since
// it fell behind (a disconnect or a tip announcement it has not reached).
// Wire it into serve.Daemon.SetLagProbe so /healthz degrades with it.
func (s *Syncer) Lag() time.Duration {
	since := s.behindSince.Load()
	if since == 0 {
		return 0
	}
	return time.Duration(s.now().UnixNano() - since)
}

// markBehind stamps the fell-behind time if not already behind.
func (s *Syncer) markBehind() {
	s.behindSince.CompareAndSwap(0, s.now().UnixNano())
}

// reviseLag re-evaluates behind/caught-up against the known tip.
func (s *Syncer) reviseLag() {
	if s.tipEpoch.Load() > s.state.Current().Epoch() {
		s.markBehind()
	} else if s.connected.Load() {
		s.behindSince.Store(0)
	}
}

func (s *Syncer) fail(err error) {
	msg := err.Error()
	s.lastErr.Store(&msg)
}

func (s *Syncer) run() {
	defer s.wg.Done()
	backoff := s.opts.RetryMin
	for attempt := 0; ; attempt++ {
		select {
		case <-s.closing:
			return
		default:
		}
		if attempt > 0 {
			s.reconnects.Add(1)
			select {
			case <-time.After(backoff):
			case <-s.closing:
				return
			}
			backoff *= 2
			if backoff > s.opts.RetryMax {
				backoff = s.opts.RetryMax
			}
		}
		conn, err := s.opts.Dial(s.opts.Addr)
		if err != nil {
			s.markBehind()
			s.fail(err)
			continue
		}
		s.mu.Lock()
		s.conn = conn
		s.mu.Unlock()
		progressed, err := s.stream(conn)
		conn.Close()
		s.mu.Lock()
		s.conn = nil
		s.mu.Unlock()
		s.connected.Store(false)
		s.markBehind()
		if err != nil {
			s.fail(err)
		}
		if progressed {
			backoff = s.opts.RetryMin
		}
	}
}

// stream runs one connection: subscribe from the resume position (the
// fold boundary plus any retained pending rows), read the JSON hello
// that carries the codec pick, then apply rows and markers — binary
// frames or JSON lines — until the link errors. It reports whether any
// message was applied, so the caller resets backoff only on progress.
func (s *Syncer) stream(conn net.Conn) (progressed bool, err error) {
	local := s.state.Current()
	folded := local.Tickets()
	nextRow := folded + len(s.pending)
	req := &Message{Kind: KindSync, Epoch: local.Epoch(), Row: nextRow}
	if s.opts.Codec != "json" {
		req.Codecs = []string{wire.CodecBinV1}
	}
	sub, err := encode(req)
	if err != nil {
		return false, err
	}
	conn.SetWriteDeadline(s.now().Add(s.opts.StallTimeout))
	if _, err := conn.Write(sub); err != nil {
		return false, fmt.Errorf("replica: subscribe: %w", err)
	}

	// One buffered reader for the whole connection. The handshake line is
	// JSON under either codec, and after a binary pick the primary's
	// frames may already sit in this buffer behind the hello — so the
	// frame reader below must wrap br, never the raw conn (a Scanner
	// cannot be handed off this way, which is why this loop reads lines
	// manually).
	br := bufio.NewReaderSize(conn, 64*1024)
	readLine := func() ([]byte, error) {
		var line []byte
		for {
			chunk, err := br.ReadSlice('\n')
			line = append(line, chunk...)
			if len(line) > MaxFrameBytes {
				return nil, fmt.Errorf("replica: frame exceeds %d bytes", MaxFrameBytes)
			}
			if err == nil {
				return line, nil
			}
			if errors.Is(err, bufio.ErrBufferFull) {
				continue
			}
			if errors.Is(err, io.EOF) {
				return nil, fmt.Errorf("replica: primary closed the stream")
			}
			return nil, fmt.Errorf("replica: stream read: %w", err)
		}
	}

	// Shared frame semantics, codec-neutral. applyHello: the first hello
	// doubles as the connection-established signal; later ones are
	// heartbeats that refresh the tip. applyRow dedups at-least-once
	// replays by row index — the same role as the collector's
	// (AgentID, Seq) index, keyed by the total order the log gives us.
	applyHello := func(epoch uint64) {
		s.connected.Store(true)
		progressed = true
		if epoch > s.tipEpoch.Load() {
			s.tipEpoch.Store(epoch)
		}
		s.reviseLag()
	}
	applyRow := func(row int, t fot.Ticket) error {
		if row > nextRow {
			return fmt.Errorf("replica: row gap: got %d, want %d", row, nextRow)
		}
		s.pending = append(s.pending, t)
		nextRow++
		s.rows.Add(1)
		progressed = true
		return nil
	}
	applyEpoch := func(epoch uint64, rows int, foldedAt time.Time) error {
		if epoch > s.tipEpoch.Load() {
			s.tipEpoch.Store(epoch)
		}
		if epoch <= s.state.Current().Epoch() {
			return nil // marker replay; the fold already happened
		}
		if rows > nextRow {
			return fmt.Errorf("replica: epoch %d needs %d rows, have %d", epoch, rows, nextRow)
		}
		take := rows - folded
		if take < 0 {
			return fmt.Errorf("replica: epoch %d rows %d behind local log %d", epoch, rows, folded)
		}
		if _, err := s.state.FoldTo(s.pending[:take], epoch, foldedAt); err != nil {
			return err
		}
		s.pending = s.pending[take:]
		folded = rows
		s.folds.Add(1)
		progressed = true
		s.reviseLag()
		return nil
	}

	// The handshake reply: a JSON hello carrying the codec pick, or a
	// terminal rejection.
	conn.SetReadDeadline(s.now().Add(s.opts.StallTimeout))
	line, err := readLine()
	if err != nil {
		return progressed, err
	}
	var hello Message
	if err := json.Unmarshal(line, &hello); err != nil {
		return progressed, fmt.Errorf("replica: decode frame: %w", err)
	}
	switch hello.Kind {
	case KindHello:
		applyHello(hello.Epoch)
		negotiated := hello.Codec
		if negotiated == "" {
			negotiated = "json"
		}
		s.lastCodec.Store(&negotiated)
	case KindError:
		return progressed, fmt.Errorf("replica: primary rejected stream: %s", hello.Error)
	default:
		return progressed, fmt.Errorf("replica: expected hello, got %q", hello.Kind)
	}

	if hello.Codec == wire.CodecBinV1 {
		fr := wire.NewFrameReader(br)
		dec := wire.NewDecoder()
		var t fot.Ticket
		for {
			conn.SetReadDeadline(s.now().Add(s.opts.StallTimeout))
			kind, payload, err := fr.Next()
			if err != nil {
				if errors.Is(err, wire.ErrCRC) {
					s.crcFailures.Add(1)
				}
				if errors.Is(err, io.EOF) {
					return progressed, fmt.Errorf("replica: primary closed the stream")
				}
				return progressed, fmt.Errorf("replica: stream read: %w", err)
			}
			switch kind {
			case wire.KindHello:
				epoch, _, derr := wire.DecodeHello(payload)
				if derr != nil {
					return progressed, derr
				}
				applyHello(epoch)
			case wire.KindRow:
				// Decode before the dedup check: replayed rows must still
				// advance the per-connection symbol table or every later
				// string reference is off by the skipped definitions.
				row, derr := dec.DecodeRowInto(payload, &t)
				if derr != nil {
					return progressed, derr
				}
				if row < nextRow {
					s.dups.Add(1)
					continue
				}
				if err := applyRow(row, t); err != nil {
					return progressed, err
				}
			case wire.KindEpoch:
				epoch, rows, foldedAt, derr := wire.DecodeEpoch(payload)
				if derr != nil {
					return progressed, derr
				}
				if err := applyEpoch(epoch, rows, foldedAt); err != nil {
					return progressed, err
				}
			case wire.KindError:
				_, msg, derr := wire.DecodeError(payload)
				if derr != nil {
					return progressed, derr
				}
				return progressed, fmt.Errorf("replica: primary rejected stream: %s", msg)
			default:
				return progressed, fmt.Errorf("replica: unknown frame kind %d", kind)
			}
		}
	}

	for {
		conn.SetReadDeadline(s.now().Add(s.opts.StallTimeout))
		line, err := readLine()
		if err != nil {
			return progressed, err
		}
		var m Message
		if err := json.Unmarshal(line, &m); err != nil {
			return progressed, fmt.Errorf("replica: decode frame: %w", err)
		}
		switch m.Kind {
		case KindHello:
			applyHello(m.Epoch)
		case KindRow:
			if m.Row < nextRow {
				s.dups.Add(1)
				continue
			}
			t, err := decodeRow(&m)
			if err != nil {
				s.crcFailures.Add(1)
				return progressed, err
			}
			if err := applyRow(m.Row, t); err != nil {
				return progressed, err
			}
		case KindEpoch:
			if err := applyEpoch(m.Epoch, m.Rows, m.FoldedAt); err != nil {
				return progressed, err
			}
		case KindError:
			return progressed, fmt.Errorf("replica: primary rejected stream: %s", m.Error)
		default:
			return progressed, fmt.Errorf("replica: unknown frame kind %q", m.Kind)
		}
	}
}
