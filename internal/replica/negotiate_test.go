package replica

import (
	"bytes"
	"testing"
	"time"

	"dcfail/internal/serve"
	"dcfail/internal/wire"
)

// TestSyncerResumesExactlyAcrossCodecSwitch is the stacked-upgrade
// scenario: a replica tails a JSON-only primary (as if the primary
// predates the binary codec), the primary restarts binary-capable on the
// same address mid-history, and the syncer's reconnect renegotiates. The
// (epoch, row) resume must be exact across the codec switch — every row
// delivered once, no replays needed, and the replica's rendered report
// byte-identical to the primary's.
func TestSyncerResumesExactlyAcrossCodecSwitch(t *testing.T) {
	trace, census := smallWorld(t)
	primary := serve.NewState(census, 0)
	now := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)

	// Phase 1: a JSON-only primary serves the first half of history.
	srv1, err := NewServer("127.0.0.1:0", primary, ServerOptions{
		Heartbeat:     20 * time.Millisecond,
		DisableBinary: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv1.Addr()

	rep := serve.NewState(census, 0)
	sy := NewSyncer(rep, fastSyncer(addr))
	sy.Start()
	defer sy.Stop()

	half := trace.Len() / 2
	primary.Fold(trace.Tickets[:half], now)
	waitConverged(t, primary, rep, 15*time.Second)
	if got := sy.Stats().Codec; got != "json" {
		t.Fatalf("codec against JSON-only primary = %q, want json", got)
	}

	// Phase 2: the primary restarts binary-capable on the same address
	// with more history; the syncer reconnects and switches codecs.
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	primary.Fold(trace.Tickets[half:], now.Add(time.Minute))
	srv2, err := NewServer(addr, primary, ServerOptions{Heartbeat: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	waitConverged(t, primary, rep, 15*time.Second)

	stats := sy.Stats()
	if stats.Codec != wire.CodecBinV1 {
		t.Fatalf("codec after binary-capable restart = %q, want %q", stats.Codec, wire.CodecBinV1)
	}
	// Exact resume: every row crossed the wire exactly once, under one
	// codec or the other, with no replayed prefix to dedup.
	if stats.Rows != uint64(trace.Len()) {
		t.Fatalf("rows accepted = %d, want %d (loss or replay across the switch)", stats.Rows, trace.Len())
	}
	if stats.Dups != 0 {
		t.Fatalf("codec switch forced %d replayed rows; resume position was not exact", stats.Dups)
	}
	if stats.CRCFailures != 0 {
		t.Fatalf("clean links produced %d crc failures", stats.CRCFailures)
	}
	if p, r := primary.Current(), rep.Current(); p.Epoch() != r.Epoch() || p.Tickets() != r.Tickets() {
		t.Fatalf("replica (epoch %d, %d rows) != primary (epoch %d, %d rows)",
			r.Epoch(), r.Tickets(), p.Epoch(), p.Tickets())
	}
	if got, want := renderSection(t, rep, "table1"), renderSection(t, primary, "table1"); !bytes.Equal(got, want) {
		t.Fatal("replica table1 differs from primary after codec switch")
	}
}

// TestSyncerBinaryByDefault: against a binary-capable primary the default
// options land on the binary codec and converge to an identical state.
func TestSyncerBinaryByDefault(t *testing.T) {
	trace, census := smallWorld(t)
	primary := serve.NewState(census, 0)
	now := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	primary.Fold(trace.Tickets[:2000], now)

	srv, err := NewServer("127.0.0.1:0", primary, ServerOptions{Heartbeat: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rep := serve.NewState(census, 0)
	sy := NewSyncer(rep, fastSyncer(srv.Addr()))
	sy.Start()
	defer sy.Stop()
	waitConverged(t, primary, rep, 15*time.Second)
	if got := sy.Stats().Codec; got != wire.CodecBinV1 {
		t.Fatalf("default negotiation = %q, want %q", got, wire.CodecBinV1)
	}
	if got, want := renderSection(t, rep, "table1"), renderSection(t, primary, "table1"); !bytes.Equal(got, want) {
		t.Fatal("binary replica table1 differs from primary")
	}
}

// TestSyncerForcedJSONAgainstBinaryPrimary: Codec "json" opts out of
// negotiation entirely and the stream stays NL-JSON.
func TestSyncerForcedJSONAgainstBinaryPrimary(t *testing.T) {
	trace, census := smallWorld(t)
	primary := serve.NewState(census, 0)
	now := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	primary.Fold(trace.Tickets[:1000], now)

	srv, err := NewServer("127.0.0.1:0", primary, ServerOptions{Heartbeat: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rep := serve.NewState(census, 0)
	opts := fastSyncer(srv.Addr())
	opts.Codec = "json"
	sy := NewSyncer(rep, opts)
	sy.Start()
	defer sy.Stop()
	waitConverged(t, primary, rep, 15*time.Second)
	if got := sy.Stats().Codec; got != "json" {
		t.Fatalf("forced-JSON negotiation = %q, want json", got)
	}
}
