package replica

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"sync"
	"testing"
	"time"

	"dcfail/internal/core"
	"dcfail/internal/faultnet"
	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
	"dcfail/internal/fot"
	"dcfail/internal/serve"
)

// smallWorld caches one deterministic SmallProfile run for the package.
var (
	smallOnce   sync.Once
	smallTrace  *fot.Trace
	smallCensus *core.Census
	smallErr    error
)

func smallWorld(t *testing.T) (*fot.Trace, *core.Census) {
	t.Helper()
	smallOnce.Do(func() {
		res, err := fms.Run(fleetgen.SmallProfile(), fms.DefaultConfig(), 7)
		if err != nil {
			smallErr = err
			return
		}
		smallTrace = res.Trace
		smallCensus = core.CensusFromFleet(res.Fleet)
	})
	if smallErr != nil {
		t.Fatal(smallErr)
	}
	return smallTrace, smallCensus
}

// waitConverged spins until the replica's state reaches the primary's
// epoch and row count.
func waitConverged(t *testing.T, primary, rep *serve.State, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		p, r := primary.Current(), rep.Current()
		if r.Epoch() == p.Epoch() && r.Tickets() == p.Tickets() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never converged: primary (epoch %d, %d rows), replica (epoch %d, %d rows)",
				p.Epoch(), p.Tickets(), r.Epoch(), r.Tickets())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// renderSection renders one section id against a state's current epoch.
func renderSection(t *testing.T, st *serve.State, id string) []byte {
	t.Helper()
	res, err := st.RenderSections(st.Current(), []string{id})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	return res[0].Text
}

// fastSyncer returns test-speed syncer options.
func fastSyncer(addr string) SyncerOptions {
	return SyncerOptions{
		Addr:         addr,
		RetryMin:     10 * time.Millisecond,
		RetryMax:     100 * time.Millisecond,
		StallTimeout: 400 * time.Millisecond,
	}
}

// TestReplicaConvergesAndMatchesPrimary: a replica catching a live fold
// stream ends at the primary's exact (epoch, rows), and its rendered
// sections are byte-identical to the primary's for that epoch.
func TestReplicaConvergesAndMatchesPrimary(t *testing.T) {
	trace, census := smallWorld(t)
	primary := serve.NewState(census, 0)
	now := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)

	srv, err := NewServer("127.0.0.1:0", primary, ServerOptions{Heartbeat: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rep := serve.NewState(census, 0)
	sy := NewSyncer(rep, fastSyncer(srv.Addr()))
	sy.Start()
	defer sy.Stop()

	// Fold the trace in uneven batches while the replica tails.
	for lo, step := 0, 997; lo < trace.Len(); lo += step {
		hi := lo + step
		if hi > trace.Len() {
			hi = trace.Len()
		}
		primary.Fold(trace.Tickets[lo:hi], now)
		now = now.Add(time.Second)
	}
	waitConverged(t, primary, rep, 15*time.Second)

	if p, r := primary.Current(), rep.Current(); p.Epoch() != r.Epoch() || !p.FoldedAt().Equal(r.FoldedAt()) {
		t.Fatalf("replica epoch/foldtime (%d, %v) != primary (%d, %v)",
			r.Epoch(), r.FoldedAt(), p.Epoch(), p.FoldedAt())
	}
	if got, want := renderSection(t, rep, "table1"), renderSection(t, primary, "table1"); !bytes.Equal(got, want) {
		t.Fatal("replica table1 differs from primary at the same epoch")
	}
	stats := sy.Stats()
	if stats.Rows != uint64(trace.Len()) || stats.Folds == 0 {
		t.Fatalf("sync stats = %+v, want %d rows and >0 folds", stats, trace.Len())
	}
	if stats.CRCFailures != 0 {
		t.Fatalf("clean link produced %d crc failures", stats.CRCFailures)
	}
	if sy.Lag() != 0 {
		t.Fatalf("caught-up replica reports lag %v", sy.Lag())
	}
}

// TestSyncerResumesFromPosition: a replica stopped mid-history resumes
// from its (epoch, row) and receives only the missing suffix.
func TestSyncerResumesFromPosition(t *testing.T) {
	trace, census := smallWorld(t)
	primary := serve.NewState(census, 0)
	now := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	half := trace.Len() / 2
	primary.Fold(trace.Tickets[:half], now)

	srv, err := NewServer("127.0.0.1:0", primary, ServerOptions{Heartbeat: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rep := serve.NewState(census, 0)
	sy := NewSyncer(rep, fastSyncer(srv.Addr()))
	sy.Start()
	waitConverged(t, primary, rep, 15*time.Second)
	sy.Stop()
	firstRows := sy.Stats().Rows
	if firstRows != uint64(half) {
		t.Fatalf("first syncer pulled %d rows, want %d", firstRows, half)
	}

	// History grows while the replica is down.
	primary.Fold(trace.Tickets[half:], now.Add(time.Minute))

	// A fresh syncer over the SAME state resumes from (epoch, row): it
	// must pull only the suffix, with no duplicate rows applied.
	sy2 := NewSyncer(rep, fastSyncer(srv.Addr()))
	sy2.Start()
	defer sy2.Stop()
	waitConverged(t, primary, rep, 15*time.Second)
	stats := sy2.Stats()
	if want := uint64(trace.Len() - half); stats.Rows != want {
		t.Fatalf("resumed syncer pulled %d rows, want only the %d-row suffix", stats.Rows, want)
	}
	if rep.Current().Tickets() != trace.Len() {
		t.Fatalf("replica log has %d rows, want %d", rep.Current().Tickets(), trace.Len())
	}
	if got, want := renderSection(t, rep, "table2"), renderSection(t, primary, "table2"); !bytes.Equal(got, want) {
		t.Fatal("resumed replica table2 differs from primary")
	}
}

// TestSyncerSurvivesLinkFaults drives the stream through a faultnet
// proxy and cycles the fault modes the tier must survive: connection
// flap, a bandwidth cap, and a black-hole-after-accept. The replica must
// converge with zero loss once the faults lift (and during them, for the
// survivable ones).
func TestSyncerSurvivesLinkFaults(t *testing.T) {
	trace, census := smallWorld(t)
	primary := serve.NewState(census, 0)
	now := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)

	srv, err := NewServer("127.0.0.1:0", primary, ServerOptions{Heartbeat: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	proxy, err := faultnet.New("127.0.0.1:0", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	rep := serve.NewState(census, 0)
	opts := fastSyncer(proxy.Addr())
	opts.StallTimeout = 150 * time.Millisecond // make black holes cheap to detect
	sy := NewSyncer(rep, opts)
	sy.Start()
	defer sy.Stop()

	third := trace.Len() / 3
	fold := func(lo, hi int) {
		for ; lo < hi; lo += 499 {
			end := lo + 499
			if end > hi {
				end = hi
			}
			primary.Fold(trace.Tickets[lo:end], now)
			now = now.Add(time.Second)
		}
	}

	// Phase 1: flapping link. Progress happens between severs.
	proxy.FlapEvery(40 * time.Millisecond)
	fold(0, third)
	waitConverged(t, primary, rep, 20*time.Second)
	proxy.FlapEvery(0)

	// Phase 2: black hole. The syncer must detect the stall by read
	// deadline and keep retrying; nothing converges until the hole lifts.
	proxy.BlackHole(true)
	proxy.SeverAll() // cut the healthy link so new traffic hits the hole
	fold(third, 2*third)
	time.Sleep(300 * time.Millisecond)
	if lag := sy.Lag(); lag == 0 {
		t.Fatal("black-holed replica reports zero lag")
	}
	proxy.BlackHole(false)
	proxy.SeverAll() // black-holed links never carry bytes; force redial
	waitConverged(t, primary, rep, 20*time.Second)

	// Phase 3: bandwidth cap. Slow, but it converges.
	proxy.SetBandwidth(256 * 1024)
	fold(2*third, trace.Len())
	waitConverged(t, primary, rep, 30*time.Second)
	proxy.SetBandwidth(0)

	stats := sy.Stats()
	if stats.Reconnects == 0 {
		t.Fatalf("fault cycle never forced a reconnect: %+v", stats)
	}
	if rep.Current().Tickets() != trace.Len() {
		t.Fatalf("replica lost rows: %d of %d", rep.Current().Tickets(), trace.Len())
	}
	if got, want := renderSection(t, rep, "table1"), renderSection(t, primary, "table1"); !bytes.Equal(got, want) {
		t.Fatal("post-chaos replica table1 differs from primary")
	}
}

// scriptedPrimary runs a raw TCP listener that answers the first sync
// request with a fixed frame script — for protocol edge cases a real
// primary never emits.
func scriptedPrimary(t *testing.T, frames func(req Message) []Message) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				if !sc.Scan() {
					return
				}
				var req Message
				if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
					return
				}
				w := bufio.NewWriter(conn)
				for _, m := range frames(req) {
					line, err := encode(&m)
					if err != nil {
						return
					}
					if _, err := w.Write(line); err != nil {
						return
					}
				}
				w.Flush()
				// Keep the conn open briefly so the syncer reads the tail
				// before EOF races it.
				time.Sleep(200 * time.Millisecond)
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func testTicket(id uint64) fot.Ticket {
	return fot.Ticket{
		ID: id, HostID: 100 + id, IDC: "dc01", Position: 1,
		Device: fot.HDD, Slot: "sdb", Type: "SMARTFail",
		Time:     time.Date(2015, 3, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(id) * time.Hour),
		Category: fot.Fixing, Action: fot.ActionRepairOrder,
	}
}

func mustRow(t *testing.T, row int, tk fot.Ticket) Message {
	t.Helper()
	m, err := rowMessage(row, tk)
	if err != nil {
		t.Fatal(err)
	}
	return *m
}

// TestSyncerDedupsReplayedRows: a primary that replays already-delivered
// rows (at-least-once) sees them skipped by row index, and replayed epoch
// markers are ignored.
func TestSyncerDedupsReplayedRows(t *testing.T) {
	_, census := smallWorld(t)
	foldedAt := time.Date(2016, 2, 1, 0, 0, 0, 0, time.UTC)
	addr := scriptedPrimary(t, func(req Message) []Message {
		if req.Row != 0 {
			// Converged replica reconnecting: nothing new.
			return []Message{{Kind: KindHello, Epoch: 1, Rows: 2}}
		}
		return []Message{
			{Kind: KindHello, Epoch: 1, Rows: 2},
			mustRow(t, 0, testTicket(1)),
			mustRow(t, 0, testTicket(1)), // replayed frame
			mustRow(t, 1, testTicket(2)),
			{Kind: KindEpoch, Epoch: 1, Rows: 2, FoldedAt: foldedAt},
			{Kind: KindEpoch, Epoch: 1, Rows: 2, FoldedAt: foldedAt}, // replayed marker
		}
	})

	rep := serve.NewState(census, 0)
	sy := NewSyncer(rep, fastSyncer(addr))
	sy.Start()
	defer sy.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for rep.Current().Epoch() != 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	cur := rep.Current()
	if cur.Epoch() != 1 || cur.Tickets() != 2 || !cur.FoldedAt().Equal(foldedAt) {
		t.Fatalf("replica = epoch %d, %d rows, folded %v; want 1, 2, %v",
			cur.Epoch(), cur.Tickets(), cur.FoldedAt(), foldedAt)
	}
	stats := sy.Stats()
	if stats.Dups != 1 {
		t.Fatalf("dup counter = %d, want 1", stats.Dups)
	}
	if stats.Rows != 2 {
		t.Fatalf("rows = %d, want 2 (the dup must not double-apply)", stats.Rows)
	}
}

// TestSyncerRejectsCorruptFrames: a frame whose payload does not match
// its CRC is rejected, the connection is dropped, and the replica
// re-syncs cleanly on the next attempt.
func TestSyncerRejectsCorruptFrames(t *testing.T) {
	_, census := smallWorld(t)
	foldedAt := time.Date(2016, 2, 1, 0, 0, 0, 0, time.UTC)
	var attempts int
	var mu sync.Mutex
	addr := scriptedPrimary(t, func(req Message) []Message {
		mu.Lock()
		attempts++
		first := attempts == 1
		mu.Unlock()
		good := mustRow(t, 0, testTicket(1))
		if first && req.Row == 0 {
			bad := good
			bad.CRC ^= 0xdeadbeef // bit-rot on the wire
			return []Message{{Kind: KindHello, Epoch: 1, Rows: 1}, bad}
		}
		if req.Row != 0 {
			return []Message{{Kind: KindHello, Epoch: 1, Rows: 1}}
		}
		return []Message{
			{Kind: KindHello, Epoch: 1, Rows: 1},
			good,
			{Kind: KindEpoch, Epoch: 1, Rows: 1, FoldedAt: foldedAt},
		}
	})

	rep := serve.NewState(census, 0)
	sy := NewSyncer(rep, fastSyncer(addr))
	sy.Start()
	defer sy.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for rep.Current().Epoch() != 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if cur := rep.Current(); cur.Epoch() != 1 || cur.Tickets() != 1 {
		t.Fatalf("replica never recovered from the corrupt frame: epoch %d, %d rows", cur.Epoch(), cur.Tickets())
	}
	stats := sy.Stats()
	if stats.CRCFailures != 1 {
		t.Fatalf("crc failure counter = %d, want 1", stats.CRCFailures)
	}
	if stats.Rows != 1 {
		t.Fatalf("rows = %d, want 1 (the corrupt frame must not apply)", stats.Rows)
	}
}

// TestServerRejectsAheadSubscriber: a subscriber claiming more history
// than the primary holds gets a terminal error frame, not a stream.
func TestServerRejectsAheadSubscriber(t *testing.T) {
	_, census := smallWorld(t)
	primary := serve.NewState(census, 0)
	srv, err := NewServer("127.0.0.1:0", primary, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.DialTimeout("tcp", srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sub, err := encode(&Message{Kind: KindSync, Epoch: 99, Row: 1234})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(sub); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		t.Fatalf("no response to an ahead subscriber: %v", sc.Err())
	}
	var m Message
	if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Kind != KindError {
		t.Fatalf("response kind = %q, want %q (%s)", m.Kind, KindError, sc.Text())
	}
	if m.Error == "" {
		t.Fatal("error frame without a reason")
	}
}
