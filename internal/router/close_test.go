package router

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// blockingProbeTransport holds health probes open until released, so a
// test can observe Close waiting on the health loop.
type blockingProbeTransport struct {
	started chan struct{}
	release chan struct{}
	probes  atomic.Int64
}

func (tr *blockingProbeTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	tr.probes.Add(1)
	select {
	case tr.started <- struct{}{}:
	default:
	}
	select {
	case <-tr.release:
	case <-req.Context().Done():
	}
	return nil, fmt.Errorf("probe held open by test")
}

// TestCloseJoinsHealthProber pins the goroutine-ownership contract the
// goroleak rule encodes: Close does not return until the health-prober
// goroutine has exited, and no probe ever fires after Close returns.
func TestCloseJoinsHealthProber(t *testing.T) {
	tr := &blockingProbeTransport{started: make(chan struct{}, 1), release: make(chan struct{})}
	rt, err := New(Options{
		Backends:      []string{"http://127.0.0.1:1"},
		CheckInterval: 5 * time.Millisecond,
		ProbeTimeout:  2 * time.Second,
		Client:        &http.Client{Transport: tr},
	})
	if err != nil {
		t.Fatal(err)
	}

	// With a probe in flight, Close must block: the loop is mid-probe.
	<-tr.started
	closed := make(chan struct{})
	go func() {
		rt.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a health probe was still in flight")
	case <-time.After(50 * time.Millisecond):
	}

	close(tr.release)
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return after the in-flight probe finished")
	}

	// Joined means gone: several check intervals after Close, the probe
	// count must not move.
	n := tr.probes.Load()
	time.Sleep(40 * time.Millisecond)
	if got := tr.probes.Load(); got != n {
		t.Fatalf("health prober kept running after Close: %d probes grew to %d", n, got)
	}
}
