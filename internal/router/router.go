// Package router fronts a fleet of read-only serving replicas with one
// stable HTTP address. It health-checks each backend's /healthz, routes
// every query to the freshest healthy replica, hedges slow attempts,
// fails over on error, and — when the whole tier is lagging — degrades
// in the open: stale responses carry staleness headers, and requests no
// replica can satisfy are shed with 503 + Retry-After instead of
// queueing until the client gives up.
//
// Epoch monotonicity: replicas converge independently, so two requests
// from one client may land on replicas at different epochs. A client
// that sends `X-Min-Epoch: E` (its last seen X-Epoch) is only answered
// from a replica at epoch ≥ E; the router also keeps a tier-wide epoch
// watermark (the newest epoch any probe or response has shown) exposed
// on every response as X-Router-Epoch, so clients can chain requests
// without ever reading time run backwards.
package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dcfail/internal/serve"
)

// Options configures a Router.
type Options struct {
	// Backends are the replica base URLs, e.g. "http://127.0.0.1:8081".
	Backends []string
	// CheckInterval is the health-probe period (default 250ms).
	CheckInterval time.Duration
	// ProbeTimeout bounds one /healthz probe (default 1s).
	ProbeTimeout time.Duration
	// RequestTimeout is the total budget for one client request across
	// every attempt, hedge, and failover (default 5s).
	RequestTimeout time.Duration
	// HedgeAfter launches a second attempt on the next-best backend when
	// the first has not answered within this window (default 250ms;
	// negative disables hedging).
	HedgeAfter time.Duration
	// RetryAfterSeconds is the Retry-After value sent when shedding
	// (default 1).
	RetryAfterSeconds int
	// Client issues backend requests; injectable for tests (default: a
	// plain http.Client — per-attempt deadlines come from the request
	// context).
	Client *http.Client
	// Now stamps probe times and staleness math (nil means time.Now).
	Now func() time.Time
}

// BackendStatus is one backend's view in /router/status.
type BackendStatus struct {
	URL       string `json:"url"`
	Healthy   bool   `json:"healthy"`
	Degraded  bool   `json:"degraded"`
	Epoch     uint64 `json:"epoch"`
	Tickets   int    `json:"tickets"`
	LagMS     int64  `json:"lag_ms"`
	LastError string `json:"last_error,omitempty"`
}

// Status is the /router/status JSON body.
type Status struct {
	Backends  []BackendStatus `json:"backends"`
	Watermark uint64          `json:"epoch_watermark"`
	Requests  uint64          `json:"requests"`
	Hedges    uint64          `json:"hedges"`
	Failovers uint64          `json:"failovers"`
	Shed      uint64          `json:"shed"`
}

// backend is the router's live record of one replica.
type backend struct {
	url string

	mu       sync.Mutex
	healthy  bool
	degraded bool
	epoch    uint64
	tickets  int
	lagMS    int64
	lastErr  string
}

func (b *backend) status() BackendStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BackendStatus{
		URL: b.url, Healthy: b.healthy, Degraded: b.degraded,
		Epoch: b.epoch, Tickets: b.tickets, LagMS: b.lagMS, LastError: b.lastErr,
	}
}

// view is an immutable routing snapshot of one backend.
type view struct {
	b        *backend
	healthy  bool
	degraded bool
	epoch    uint64
	lagMS    int64
}

func (b *backend) view() view {
	b.mu.Lock()
	defer b.mu.Unlock()
	return view{b: b, healthy: b.healthy, degraded: b.degraded, epoch: b.epoch, lagMS: b.lagMS}
}

// Router is the serving-tier front end. Create with New, then serve its
// Handler; Close stops the health loop.
type Router struct {
	opts     Options
	now      func() time.Time
	client   *http.Client
	backends []*backend
	handler  http.Handler

	watermark atomic.Uint64
	requests  atomic.Uint64
	hedges    atomic.Uint64
	failovers atomic.Uint64
	shed      atomic.Uint64

	wg        sync.WaitGroup
	closing   chan struct{}
	closeOnce sync.Once
}

// New builds a router over the given backends and starts its health
// loop. Callers must Close it.
func New(opts Options) (*Router, error) {
	if len(opts.Backends) == 0 {
		return nil, fmt.Errorf("router: no backends")
	}
	if opts.CheckInterval <= 0 {
		opts.CheckInterval = 250 * time.Millisecond
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = time.Second
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 5 * time.Second
	}
	if opts.HedgeAfter == 0 {
		opts.HedgeAfter = 250 * time.Millisecond
	}
	if opts.RetryAfterSeconds <= 0 {
		opts.RetryAfterSeconds = 1
	}
	rt := &Router{
		opts:    opts,
		now:     opts.Now,
		client:  opts.Client,
		closing: make(chan struct{}),
	}
	if rt.now == nil {
		//lint:ignore walltime injection-point default; Options.Now overrides the clock used for probes and staleness
		rt.now = time.Now
	}
	if rt.client == nil {
		rt.client = &http.Client{}
	}
	for _, u := range opts.Backends {
		rt.backends = append(rt.backends, &backend{url: u})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /router/status", rt.handleStatus)
	mux.HandleFunc("/", rt.route)
	rt.handler = mux

	rt.wg.Add(1)
	go rt.healthLoop()
	return rt, nil
}

// Handler returns the router's HTTP handler: every backend route plus
// /router/status.
func (rt *Router) Handler() http.Handler { return rt.handler }

// Close stops the health loop. In-flight requests finish on their own
// deadlines. Idempotent.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() { close(rt.closing) })
	rt.wg.Wait()
}

// Watermark returns the newest epoch the router has observed tier-wide.
func (rt *Router) Watermark() uint64 { return rt.watermark.Load() }

// Status returns the current tier view and lifetime counters.
func (rt *Router) Status() Status {
	st := Status{
		Watermark: rt.watermark.Load(),
		Requests:  rt.requests.Load(),
		Hedges:    rt.hedges.Load(),
		Failovers: rt.failovers.Load(),
		Shed:      rt.shed.Load(),
	}
	for _, b := range rt.backends {
		st.Backends = append(st.Backends, b.status())
	}
	return st
}

func (rt *Router) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rt.Status())
}

// raiseWatermark lifts the tier watermark monotonically.
func (rt *Router) raiseWatermark(epoch uint64) {
	for {
		cur := rt.watermark.Load()
		if epoch <= cur || rt.watermark.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// healthLoop probes every backend each CheckInterval. One probe answers
// both questions the router has — is the replica reachable, and how
// fresh is it — because /healthz carries status, epoch, and lag.
func (rt *Router) healthLoop() {
	defer rt.wg.Done()
	rt.probeAll() // immediately, so the first request has a tier view
	tick := time.NewTicker(rt.opts.CheckInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			rt.probeAll()
		case <-rt.closing:
			return
		}
	}
}

func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, b := range rt.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			rt.probe(b)
		}(b)
	}
	wg.Wait()
}

func (rt *Router) probe(b *backend) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
	if err != nil {
		rt.markDown(b, err)
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.markDown(b, err)
		return
	}
	defer resp.Body.Close()
	var health serve.HealthReply
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&health); err != nil {
		rt.markDown(b, fmt.Errorf("decode healthz: %w", err))
		return
	}
	rt.raiseWatermark(health.Epoch)
	b.mu.Lock()
	b.healthy = true
	b.degraded = resp.StatusCode != http.StatusOK || health.Status != serve.HealthOK
	b.epoch = health.Epoch
	b.tickets = health.Tickets
	b.lagMS = health.LagMS
	if b.degraded {
		b.lastErr = health.Reason
	} else {
		b.lastErr = ""
	}
	b.mu.Unlock()
}

func (rt *Router) markDown(b *backend, err error) {
	b.mu.Lock()
	b.healthy = false
	b.degraded = false
	b.lastErr = err.Error()
	b.mu.Unlock()
}

// candidates returns backends able to serve a request at epoch ≥
// minEpoch, best first: healthy fresh replicas by descending epoch, then
// degraded-but-reachable ones (they still serve their last complete
// epoch). Backends in `tried` are excluded.
func (rt *Router) candidates(minEpoch uint64, tried map[*backend]bool) []view {
	var fresh, stale []view
	for _, b := range rt.backends {
		v := b.view()
		if tried[b] || !v.healthy || v.epoch < minEpoch {
			continue
		}
		if v.degraded {
			stale = append(stale, v)
		} else {
			fresh = append(fresh, v)
		}
	}
	byEpoch := func(vs []view) func(i, j int) bool {
		return func(i, j int) bool { return vs[i].epoch > vs[j].epoch }
	}
	sort.SliceStable(fresh, byEpoch(fresh))
	sort.SliceStable(stale, byEpoch(stale))
	return append(fresh, stale...)
}

// attemptResult is one backend attempt's outcome.
type attemptResult struct {
	v      view
	resp   *http.Response
	body   []byte
	err    error
	hedged bool
}

// route serves one client request: pick the freshest eligible replica,
// hedge if it dawdles, fail over if it errors, and shed with 503 +
// Retry-After if the deadline expires with no replica able to answer.
func (rt *Router) route(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "router: read-only tier", http.StatusMethodNotAllowed)
		return
	}
	minEpoch := uint64(0)
	if raw := r.Header.Get("X-Min-Epoch"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			http.Error(w, "router: bad X-Min-Epoch", http.StatusBadRequest)
			return
		}
		minEpoch = v
	}

	ctx, cancel := context.WithTimeout(r.Context(), rt.opts.RequestTimeout)
	defer cancel()

	tried := make(map[*backend]bool)
	for {
		cands := rt.candidates(minEpoch, tried)
		if len(cands) == 0 {
			if len(tried) > 0 {
				// Every eligible backend failed this request; a fresh
				// candidate set may heal within the deadline.
				tried = make(map[*backend]bool)
			}
			// Wait for a probe to surface capacity, within the deadline.
			select {
			case <-ctx.Done():
				rt.shedRequest(w)
				return
			case <-time.After(rt.opts.CheckInterval):
				continue
			}
		}
		res, ok := rt.attempt(ctx, r, cands, tried, minEpoch)
		if !ok {
			select {
			case <-ctx.Done():
				rt.shedRequest(w)
				return
			default:
				continue // failover: next candidate set
			}
		}
		rt.writeResponse(w, res)
		return
	}
}

// shedRequest answers 503 + Retry-After: the tier is lagging or down,
// and honest backpressure beats an unbounded queue.
func (rt *Router) shedRequest(w http.ResponseWriter) {
	rt.shed.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(rt.opts.RetryAfterSeconds))
	w.Header().Set("X-Router-Epoch", strconv.FormatUint(rt.watermark.Load(), 10))
	http.Error(w, "router: no replica can serve this request; retry shortly", http.StatusServiceUnavailable)
}

// staleFor reports whether a response violates the client's minimum
// epoch. Probed epochs only lag reality, so this should never fire for
// a well-behaved replica — but the monotonicity guarantee is checked
// against what the backend actually said, not what the probe believed.
func staleFor(resp *http.Response, minEpoch uint64) bool {
	raw := resp.Header.Get("X-Epoch")
	if raw == "" || minEpoch == 0 {
		return false
	}
	epoch, err := strconv.ParseUint(raw, 10, 64)
	return err == nil && epoch < minEpoch
}

// attempt runs one primary try against cands[0], hedging onto cands[1]
// if the first answer is slow. The first usable response wins; failed
// backends land in tried.
func (rt *Router) attempt(ctx context.Context, r *http.Request, cands []view, tried map[*backend]bool, minEpoch uint64) (attemptResult, bool) {
	results := make(chan attemptResult, 2)
	launch := func(v view, hedged bool) {
		go func() {
			resp, body, err := rt.forward(ctx, r, v)
			results <- attemptResult{v: v, resp: resp, body: body, err: err, hedged: hedged}
		}()
	}
	launch(cands[0], false)
	inFlight := 1

	var hedge <-chan time.Time
	if rt.opts.HedgeAfter > 0 && len(cands) > 1 {
		hedge = time.After(rt.opts.HedgeAfter)
	}
	for inFlight > 0 {
		select {
		case <-hedge:
			hedge = nil
			rt.hedges.Add(1)
			launch(cands[1], true)
			inFlight++
		case res := <-results:
			inFlight--
			if res.err != nil || res.resp.StatusCode >= http.StatusInternalServerError ||
				staleFor(res.resp, minEpoch) {
				// This replica is no good for this request; remember that
				// and wait for the hedge (if any) before giving up.
				tried[res.v.b] = true
				rt.failovers.Add(1)
				if res.err == nil {
					if staleFor(res.resp, minEpoch) {
						res.err = fmt.Errorf("epoch %s below client minimum %d",
							res.resp.Header.Get("X-Epoch"), minEpoch)
					} else {
						res.err = fmt.Errorf("status %d", res.resp.StatusCode)
					}
				}
				res.v.b.mu.Lock()
				res.v.b.lastErr = res.err.Error()
				res.v.b.mu.Unlock()
				continue
			}
			return res, true
		case <-ctx.Done():
			return attemptResult{}, false
		}
	}
	return attemptResult{}, false
}

// forward relays the client request to one backend and buffers the
// response, so a failover can still pick a different replica after a
// mid-body error without having committed bytes to the client.
func (rt *Router) forward(ctx context.Context, r *http.Request, v view) (*http.Response, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, r.Method, v.b.url+r.URL.RequestURI(), nil)
	if err != nil {
		return nil, nil, err
	}
	req.Header = r.Header.Clone()
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, body, nil
}

// writeResponse relays a backend response, stamping tier headers.
func (rt *Router) writeResponse(w http.ResponseWriter, res attemptResult) {
	if raw := res.resp.Header.Get("X-Epoch"); raw != "" {
		if epoch, err := strconv.ParseUint(raw, 10, 64); err == nil {
			rt.raiseWatermark(epoch)
		}
	}
	h := w.Header()
	for k, vals := range res.resp.Header {
		for _, v := range vals {
			h.Add(k, v)
		}
	}
	h.Set("X-Served-By", res.v.b.url)
	h.Set("X-Router-Epoch", strconv.FormatUint(rt.watermark.Load(), 10))
	if res.v.degraded {
		// Honest staleness: the body is a complete epoch, just not the
		// newest one the tier has seen.
		h.Set("X-Stale", "true")
		h.Set("X-Staleness-MS", strconv.FormatInt(res.v.lagMS, 10))
		if h.Get("X-Epoch") == "" {
			// Backend endpoints that don't stamp snapshot headers still owe
			// monotonic-read clients an epoch for a stale body; the probe's
			// view is the epoch that replica is serving.
			h.Set("X-Epoch", strconv.FormatUint(res.v.epoch, 10))
		}
	}
	w.WriteHeader(res.resp.StatusCode)
	w.Write(res.body)
}
