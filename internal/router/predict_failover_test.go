package router

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dcfail/internal/faultnet"
	"dcfail/internal/fot"
	"dcfail/internal/predict"
	"dcfail/internal/replica"
	"dcfail/internal/serve"
)

// TestAtRiskFailoverConsistency kills a replica mid-stream while clients
// rank hosts through the router. The gate: every /atrisk response is
// 200, its X-Epoch matches the body epoch and never runs backwards per
// client, and the ranked (host, score) list is exactly what a reference
// predict.Engine computes for that epoch's ticket prefix — whichever
// replica served it, before or after the failover.
func TestAtRiskFailoverConsistency(t *testing.T) {
	trace, census := chaosWorld(t)

	// Replicas fold what the replication wire delivers. The negotiated
	// binary codec is lossless (nanoseconds included), so the oracle
	// folds the primary's in-memory tickets verbatim — the wire no
	// longer truncates timestamps the way the legacy JSON codec did.
	primary := serve.NewState(census, 0)
	var epochRows sync.Map // uint64 epoch -> int rows
	epochRows.Store(uint64(0), 0)
	stream, err := replica.NewServer("127.0.0.1:0", primary, replica.ServerOptions{Heartbeat: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()

	repA := startChaosReplica(t, census, stream.Addr())
	front, err := faultnet.New("127.0.0.1:0", repA.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()
	repB := startChaosReplica(t, census, stream.Addr())
	defer repB.kill()

	rt, err := New(Options{
		Backends:       []string{"http://" + front.Addr(), "http://" + repB.addr()},
		CheckInterval:  25 * time.Millisecond,
		ProbeTimeout:   time.Second,
		RequestTimeout: 30 * time.Second,
		HedgeAfter:     250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()
	waitHealthy(t, rt, 2)

	// The ranking oracle: a reference engine folded to the epoch's exact
	// ticket prefix. Chunking does not matter (the fold is row-by-row
	// inside a batch), so one Advance reproduces any replica's state.
	const topN = 8
	var refMu sync.Mutex
	refs := map[uint64][]predict.HostScore{}
	oracle := func(epoch uint64) ([]predict.HostScore, error) {
		refMu.Lock()
		defer refMu.Unlock()
		if r, ok := refs[epoch]; ok {
			return r, nil
		}
		rowsAny, ok := epochRows.Load(epoch)
		if !ok {
			return nil, fmt.Errorf("epoch %d was never published by the primary", epoch)
		}
		e := predict.NewEngine(predict.Options{})
		e.Advance(fot.BorrowTraceIndex(fot.NewTrace(trace.Tickets[:rowsAny.(int)])), epoch)
		ranked, _ := e.AtRisk(topN)
		refs[epoch] = ranked
		return ranked, nil
	}

	// Fold driver: 12 epochs, killing replica A a third of the way in.
	const batches = 12
	step := (trace.Len() + batches - 1) / batches
	foldDone := make(chan struct{})
	go func() {
		defer close(foldDone)
		now := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
		for i := 0; i < batches; i++ {
			lo, hi := i*step, (i+1)*step
			if hi > trace.Len() {
				hi = trace.Len()
			}
			snap := primary.Fold(trace.Tickets[lo:hi], now)
			epochRows.Store(snap.Epoch(), snap.Tickets())
			now = now.Add(time.Minute)
			if i == batches/3 {
				repA.kill()
				front.SeverAll()
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()

	clients := 20
	var failed atomic.Uint64
	errs := make(chan error, 16)
	reportErr := func(err error) {
		failed.Add(1)
		select {
		case errs <- err:
		default:
		}
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			time.Sleep(time.Duration(c*10) * time.Millisecond)
			client := srv.Client()
			minEpoch := uint64(0)
			for i := 0; i < 6; i++ {
				req, err := http.NewRequest(http.MethodGet, srv.URL+"/atrisk?n="+strconv.Itoa(topN), nil)
				if err != nil {
					reportErr(err)
					return
				}
				if minEpoch > 0 {
					req.Header.Set("X-Min-Epoch", strconv.FormatUint(minEpoch, 10))
				}
				resp, err := client.Do(req)
				if err != nil {
					reportErr(fmt.Errorf("client %d req %d: %w", c, i, err))
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					reportErr(fmt.Errorf("client %d req %d: read: %w", c, i, err))
					return
				}
				if resp.StatusCode != http.StatusOK {
					reportErr(fmt.Errorf("client %d req %d: status %d: %s", c, i, resp.StatusCode, body))
					return
				}
				epoch, err := strconv.ParseUint(resp.Header.Get("X-Epoch"), 10, 64)
				if err != nil {
					reportErr(fmt.Errorf("client %d req %d: bad X-Epoch %q", c, i, resp.Header.Get("X-Epoch")))
					return
				}
				if epoch < minEpoch {
					reportErr(fmt.Errorf("client %d req %d: epoch ran backwards: %d after %d", c, i, epoch, minEpoch))
					return
				}
				var ar serve.AtRiskReply
				if err := json.Unmarshal(body, &ar); err != nil {
					reportErr(fmt.Errorf("client %d req %d: %w", c, i, err))
					return
				}
				if ar.Epoch != epoch {
					reportErr(fmt.Errorf("client %d req %d: body epoch %d, header %d", c, i, ar.Epoch, epoch))
					return
				}
				want, err := oracle(epoch)
				if err != nil {
					reportErr(fmt.Errorf("client %d req %d: %w", c, i, err))
					return
				}
				if len(ar.Hosts) != len(want) {
					reportErr(fmt.Errorf("client %d req %d: epoch %d ranked %d hosts, reference has %d",
						c, i, epoch, len(ar.Hosts), len(want)))
					return
				}
				for j := range want {
					if ar.Hosts[j].Host != want[j].Host || ar.Hosts[j].Score != want[j].Score {
						reportErr(fmt.Errorf("client %d req %d: epoch %d rank %d is (%d, %v), reference (%d, %v)",
							c, i, epoch, j, ar.Hosts[j].Host, ar.Hosts[j].Score, want[j].Host, want[j].Score))
						return
					}
				}
				minEpoch = epoch
			}
		}(c)
	}
	wg.Wait()
	<-foldDone
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d /atrisk queries failed through failover (gate: zero)", n)
	}
}
