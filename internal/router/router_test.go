package router

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"dcfail/internal/serve"
)

// fakeReplica is a scripted backend: /healthz serves the configured
// reply, /report/table1 serves the configured body + X-Epoch.
type fakeReplica struct {
	srv *httptest.Server

	healthCode atomic.Int64
	epoch      atomic.Uint64
	degraded   atomic.Bool
	lagMS      atomic.Int64
	reportCode atomic.Int64
	delay      atomic.Int64 // report handler sleep, nanoseconds
	hits       atomic.Uint64
}

func newFakeReplica(t *testing.T, epoch uint64) *fakeReplica {
	t.Helper()
	f := &fakeReplica{}
	f.healthCode.Store(http.StatusOK)
	f.reportCode.Store(http.StatusOK)
	f.epoch.Store(epoch)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		reply := serve.HealthReply{Status: serve.HealthOK, Epoch: f.epoch.Load(), LagMS: f.lagMS.Load()}
		code := int(f.healthCode.Load())
		if f.degraded.Load() {
			reply.Status = serve.HealthDegraded
			reply.Reason = "source lag"
			code = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(reply)
	})
	// /alerts mimics the daemon endpoints that reply without snapshot
	// headers — no X-Epoch on the backend response.
	mux.HandleFunc("GET /alerts", func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"total":0,"recent":[]}`)
	})
	mux.HandleFunc("GET /report/table1", func(w http.ResponseWriter, r *http.Request) {
		if d := f.delay.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		f.hits.Add(1)
		if code := int(f.reportCode.Load()); code != http.StatusOK {
			http.Error(w, "scripted failure", code)
			return
		}
		w.Header().Set("X-Epoch", strconv.FormatUint(f.epoch.Load(), 10))
		fmt.Fprintf(w, "report from %s at epoch %d", f.srv.URL, f.epoch.Load())
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func startRouter(t *testing.T, opts Options, backends ...*fakeReplica) (*Router, *httptest.Server) {
	t.Helper()
	for _, b := range backends {
		opts.Backends = append(opts.Backends, b.srv.URL)
	}
	if opts.CheckInterval == 0 {
		opts.CheckInterval = 20 * time.Millisecond
	}
	rt, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	srv := httptest.NewServer(rt.Handler())
	t.Cleanup(srv.Close)
	return rt, srv
}

// waitHealthy blocks until the router's tier view shows n healthy
// backends.
func waitHealthy(t *testing.T, rt *Router, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		healthy := 0
		for _, b := range rt.Status().Backends {
			if b.Healthy {
				healthy++
			}
		}
		if healthy == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never saw %d healthy backends: %+v", n, rt.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func routedGet(t *testing.T, base string, minEpoch uint64) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/report/table1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if minEpoch > 0 {
		req.Header.Set("X-Min-Epoch", strconv.FormatUint(minEpoch, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestRoutesToFreshestHealthyBackend(t *testing.T) {
	stale := newFakeReplica(t, 5)
	fresh := newFakeReplica(t, 9)
	rt, srv := startRouter(t, Options{HedgeAfter: -1}, stale, fresh)
	waitHealthy(t, rt, 2)

	for i := 0; i < 5; i++ {
		resp, _ := routedGet(t, srv.URL, 0)
		if got := resp.Header.Get("X-Served-By"); got != fresh.srv.URL {
			t.Fatalf("request %d served by %s, want the freshest %s", i, got, fresh.srv.URL)
		}
	}
	if stale.hits.Load() != 0 {
		t.Fatalf("stale replica took %d hits with the fresh one healthy", stale.hits.Load())
	}
	if rt.Watermark() != 9 {
		t.Fatalf("watermark = %d, want 9", rt.Watermark())
	}
}

func TestFailoverOnBackendError(t *testing.T) {
	bad := newFakeReplica(t, 9)
	good := newFakeReplica(t, 7)
	bad.reportCode.Store(http.StatusInternalServerError)
	rt, srv := startRouter(t, Options{HedgeAfter: -1}, bad, good)
	waitHealthy(t, rt, 2)

	// The freshest replica 500s; the router must answer from the other.
	resp, body := routedGet(t, srv.URL, 0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Served-By"); got != good.srv.URL {
		t.Fatalf("served by %s, want failover to %s", got, good.srv.URL)
	}
	if rt.Status().Failovers == 0 {
		t.Fatal("failover counter never moved")
	}
}

func TestDegradedReplicaServesWithStalenessHeaders(t *testing.T) {
	lagging := newFakeReplica(t, 4)
	lagging.degraded.Store(true)
	lagging.lagMS.Store(1500)
	rt, srv := startRouter(t, Options{HedgeAfter: -1}, lagging)
	waitHealthy(t, rt, 1)

	// The only replica is degraded: it still answers (last complete
	// epoch), and the router says so out loud.
	resp, body := routedGet(t, srv.URL, 0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Stale") != "true" {
		t.Fatalf("degraded response missing X-Stale: %v", resp.Header)
	}
	if resp.Header.Get("X-Staleness-MS") != "1500" {
		t.Fatalf("X-Staleness-MS = %q, want 1500", resp.Header.Get("X-Staleness-MS"))
	}
	if resp.Header.Get("X-Epoch") != "4" {
		t.Fatalf("stale response X-Epoch = %q, want 4 from the backend", resp.Header.Get("X-Epoch"))
	}
}

// TestDegradedResponseCarriesEpochWithoutBackendHeader pins the fix for
// stale bodies from endpoints that don't stamp snapshot headers: the
// router must fill in X-Epoch from its probe view so a monotonic-read
// client can still reason about what it was served.
func TestDegradedResponseCarriesEpochWithoutBackendHeader(t *testing.T) {
	lagging := newFakeReplica(t, 4)
	lagging.degraded.Store(true)
	lagging.lagMS.Store(900)
	rt, srv := startRouter(t, Options{HedgeAfter: -1}, lagging)
	waitHealthy(t, rt, 1)

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/alerts", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("X-Stale") != "true" {
		t.Fatalf("degraded response missing X-Stale: %v", resp.Header)
	}
	if resp.Header.Get("X-Epoch") != "4" {
		t.Fatalf("stale response X-Epoch = %q, want 4 from the router's probe view", resp.Header.Get("X-Epoch"))
	}
}

func TestShedsWithRetryAfterWhenTierIsDown(t *testing.T) {
	dead := newFakeReplica(t, 3)
	dead.srv.Close() // unreachable from the start
	rt, srv := startRouter(t, Options{
		HedgeAfter:        -1,
		RequestTimeout:    200 * time.Millisecond,
		RetryAfterSeconds: 7,
	}, dead)

	resp, _ := routedGet(t, srv.URL, 0)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "7" {
		t.Fatalf("Retry-After = %q, want 7", resp.Header.Get("Retry-After"))
	}
	if rt.Status().Shed == 0 {
		t.Fatal("shed counter never moved")
	}
}

// TestShedRetryAfterDefaultsPositive is the regression for the shed
// path with RetryAfterSeconds left unset: option normalization must
// substitute a positive default — "Retry-After: 0" tells well-behaved
// clients to hammer a tier that just said it has no capacity.
func TestShedRetryAfterDefaultsPositive(t *testing.T) {
	dead := newFakeReplica(t, 3)
	dead.srv.Close()
	_, srv := startRouter(t, Options{
		HedgeAfter:     -1,
		RequestTimeout: 200 * time.Millisecond,
		// RetryAfterSeconds deliberately unset.
	}, dead)

	resp, _ := routedGet(t, srv.URL, 0)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra <= 0 {
		t.Fatalf("Retry-After = %q, want a positive integer by default", resp.Header.Get("Retry-After"))
	}
}

func TestMinEpochExcludesLaggingReplicas(t *testing.T) {
	behind := newFakeReplica(t, 3)
	ahead := newFakeReplica(t, 8)
	rt, srv := startRouter(t, Options{HedgeAfter: -1}, behind, ahead)
	waitHealthy(t, rt, 2)

	resp, _ := routedGet(t, srv.URL, 5)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 from the ahead replica", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Served-By"); got != ahead.srv.URL {
		t.Fatalf("served by %s, want %s (the only one at epoch ≥ 5)", got, ahead.srv.URL)
	}

	// No replica can satisfy the minimum → shed, not a stale answer.
	resp, _ = func() (*http.Response, string) {
		rt2, srv2 := startRouter(t, Options{
			HedgeAfter:     -1,
			RequestTimeout: 200 * time.Millisecond,
		}, behind)
		waitHealthy(t, rt2, 1)
		return routedGet(t, srv2.URL, 5)
	}()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 when no replica reaches the minimum epoch", resp.StatusCode)
	}
}

func TestHedgedRequestBeatsSlowReplica(t *testing.T) {
	slow := newFakeReplica(t, 9)
	fast := newFakeReplica(t, 9)
	slow.delay.Store(int64(2 * time.Second))
	rt, srv := startRouter(t, Options{HedgeAfter: 50 * time.Millisecond}, slow, fast)
	waitHealthy(t, rt, 2)

	// Force the slow replica to rank first by giving it a higher epoch.
	slow.epoch.Store(10)
	deadline := time.Now().Add(5 * time.Second)
	for rt.Watermark() != 10 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	start := time.Now()
	resp, body := routedGet(t, srv.URL, 0)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Served-By"); got != fast.srv.URL {
		t.Fatalf("served by %s, want the hedge target %s", got, fast.srv.URL)
	}
	if elapsed > time.Second {
		t.Fatalf("hedged request took %v; the hedge never fired", elapsed)
	}
	if rt.Status().Hedges == 0 {
		t.Fatal("hedge counter never moved")
	}
}

func TestWritesRejected(t *testing.T) {
	rep := newFakeReplica(t, 1)
	rt, srv := startRouter(t, Options{HedgeAfter: -1}, rep)
	waitHealthy(t, rt, 1)
	resp, err := http.Post(srv.URL+"/report/table1", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d, want 405", resp.StatusCode)
	}
}
