package router

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dcfail/internal/core"
	"dcfail/internal/faultnet"
	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
	"dcfail/internal/fot"
	"dcfail/internal/replica"
	"dcfail/internal/report"
	"dcfail/internal/serve"
)

// chaosWorld caches one deterministic SmallProfile run for this file.
var (
	chaosOnce   sync.Once
	chaosTrace  *fot.Trace
	chaosCensus *core.Census
	chaosErr    error
)

func chaosWorld(t *testing.T) (*fot.Trace, *core.Census) {
	t.Helper()
	chaosOnce.Do(func() {
		res, err := fms.Run(fleetgen.SmallProfile(), fms.DefaultConfig(), 11)
		if err != nil {
			chaosErr = err
			return
		}
		chaosTrace = res.Trace
		chaosCensus = core.CensusFromFleet(res.Fleet)
	})
	if chaosErr != nil {
		t.Fatal(chaosErr)
	}
	return chaosTrace, chaosCensus
}

// chaosReplica is one serving replica: daemon + syncer + HTTP listener.
type chaosReplica struct {
	daemon *serve.Daemon
	syncer *replica.Syncer
	ln     net.Listener
}

func startChaosReplica(t *testing.T, census *core.Census, streamAddr string) *chaosReplica {
	t.Helper()
	d := serve.New(serve.Options{Census: census, DegradedAfter: 2 * time.Second, MaxConcurrent: 256})
	sy := replica.NewSyncer(d.State(), replica.SyncerOptions{
		Addr:         streamAddr,
		RetryMin:     10 * time.Millisecond,
		RetryMax:     200 * time.Millisecond,
		StallTimeout: 500 * time.Millisecond,
	})
	d.SetLagProbe(sy.Lag)
	sy.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		sy.Stop()
		t.Fatal(err)
	}
	go d.Serve(ln)
	return &chaosReplica{daemon: d, syncer: sy, ln: ln}
}

func (r *chaosReplica) addr() string { return r.ln.Addr().String() }

// kill simulates an abrupt process death: the HTTP listener and the
// replication stream vanish, with no graceful drain.
func (r *chaosReplica) kill() {
	r.ln.Close()
	r.syncer.Stop()
}

// TestChaosReplicaKillRestartUnderLoad is the tier's safety proof, run
// under -race by `make chaos`. A thousand concurrent clients query the
// router while the primary folds epochs and one replica is killed
// (mid-stream, no drain) and later restarted from an empty state behind
// the same front address. The gate:
//
//   - zero failed queries — every request returns 200 through failover,
//     hedging, and the wait-for-capacity path;
//   - every response body is byte-identical to report.SerialReference
//     over the ticket prefix of the epoch named in its X-Epoch header;
//   - epochs never run backwards for any single client (enforced
//     end-to-end via X-Min-Epoch).
func TestChaosReplicaKillRestartUnderLoad(t *testing.T) {
	trace, census := chaosWorld(t)
	clients := 1000
	if testing.Short() {
		clients = 100
	}

	// Primary: folds are driven by this test so every published
	// (epoch, rows) pair is recorded for the byte-identity oracle.
	primary := serve.NewState(census, 0)
	var epochRows sync.Map // uint64 epoch -> int rows
	epochRows.Store(uint64(0), 0)
	stream, err := replica.NewServer("127.0.0.1:0", primary, replica.ServerOptions{Heartbeat: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()

	// Replica A sits behind a fixed faultnet front so its backend URL
	// survives the kill/restart; replica B is plain.
	repA := startChaosReplica(t, census, stream.Addr())
	front, err := faultnet.New("127.0.0.1:0", repA.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()
	repB := startChaosReplica(t, census, stream.Addr())
	defer repB.kill()

	rt, err := New(Options{
		Backends:       []string{"http://" + front.Addr(), "http://" + repB.addr()},
		CheckInterval:  25 * time.Millisecond,
		ProbeTimeout:   time.Second,
		RequestTimeout: 60 * time.Second,
		HedgeAfter:     250 * time.Millisecond,
		Client:         &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 1024}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()
	waitHealthy(t, rt, 2)

	// The byte-identity oracle: expected table2 bytes for an epoch,
	// rendered lazily from the recorded prefix.
	var refMu sync.Mutex
	refs := map[uint64][]byte{}
	expected := func(epoch uint64) ([]byte, error) {
		refMu.Lock()
		defer refMu.Unlock()
		if b, ok := refs[epoch]; ok {
			return b, nil
		}
		rowsAny, ok := epochRows.Load(epoch)
		if !ok {
			return nil, fmt.Errorf("epoch %d was never published by the primary", epoch)
		}
		var buf bytes.Buffer
		prefix := fot.NewTrace(trace.Tickets[:rowsAny.(int)])
		if err := report.SerialReference(&buf, prefix, census, func(id string) bool { return id == "table2" }); err != nil {
			return nil, err
		}
		refs[epoch] = buf.Bytes()
		return buf.Bytes(), nil
	}

	// Fold driver: ~24 epochs, 50ms apart. Replica A is killed a third
	// of the way in — mid-stream, while epochs are still being published
	// — and restarted (empty state, same front address) at two thirds.
	const batches = 24
	step := (trace.Len() + batches - 1) / batches
	foldDone := make(chan struct{})
	restarted := make(chan *chaosReplica, 1)
	go func() {
		defer close(foldDone)
		now := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
		for i := 0; i < batches; i++ {
			lo, hi := i*step, (i+1)*step
			if hi > trace.Len() {
				hi = trace.Len()
			}
			snap := primary.Fold(trace.Tickets[lo:hi], now)
			epochRows.Store(snap.Epoch(), snap.Tickets())
			now = now.Add(time.Minute)
			switch i {
			case batches / 3:
				repA.kill()
				front.SeverAll()
			case 2 * batches / 3:
				fresh := startChaosReplica(t, census, stream.Addr())
				front.SetUpstream(fresh.addr())
				front.SeverAll()
				restarted <- fresh
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()

	// The client fleet. Each client chains requests with X-Min-Epoch so
	// monotonicity is enforced end-to-end, not just observed.
	transport := &http.Transport{MaxIdleConnsPerHost: 1024}
	defer transport.CloseIdleConnections()
	var failed, completed atomic.Uint64
	errs := make(chan error, 32)
	reportErr := func(err error) {
		failed.Add(1)
		select {
		case errs <- err:
		default:
		}
	}
	// Clients ramp in over ~1s rather than dialing in the same
	// microsecond: a load generator models arrival, not a syscall burst.
	// No client-side timeout — the router's RequestTimeout is the tier's
	// own latency bound, and the gate here is zero FAILED queries.
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			time.Sleep(time.Duration(c) * time.Millisecond)
			client := &http.Client{Transport: transport}
			minEpoch := uint64(0)
			for i := 0; i < 4; i++ {
				req, err := http.NewRequest(http.MethodGet, srv.URL+"/report?sections=table2", nil)
				if err != nil {
					reportErr(err)
					return
				}
				if minEpoch > 0 {
					req.Header.Set("X-Min-Epoch", strconv.FormatUint(minEpoch, 10))
				}
				resp, err := client.Do(req)
				if err != nil {
					reportErr(fmt.Errorf("client %d req %d: %w", c, i, err))
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					reportErr(fmt.Errorf("client %d req %d: read: %w", c, i, err))
					return
				}
				if resp.StatusCode != http.StatusOK {
					reportErr(fmt.Errorf("client %d req %d: status %d: %s", c, i, resp.StatusCode, body))
					return
				}
				epoch, err := strconv.ParseUint(resp.Header.Get("X-Epoch"), 10, 64)
				if err != nil {
					reportErr(fmt.Errorf("client %d req %d: bad X-Epoch %q", c, i, resp.Header.Get("X-Epoch")))
					return
				}
				if epoch < minEpoch {
					reportErr(fmt.Errorf("client %d req %d: epoch ran backwards: %d after %d", c, i, epoch, minEpoch))
					return
				}
				want, err := expected(epoch)
				if err != nil {
					reportErr(fmt.Errorf("client %d req %d: %w", c, i, err))
					return
				}
				if !bytes.Equal(body, want) {
					reportErr(fmt.Errorf("client %d req %d: epoch %d body differs from serial reference (%d vs %d bytes)",
						c, i, epoch, len(body), len(want)))
					return
				}
				minEpoch = epoch
				completed.Add(1)
			}
		}(c)
	}
	wg.Wait()
	<-foldDone
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d of %d queries failed (gate: zero)", n, uint64(clients)*4)
	}
	if got, want := completed.Load(), uint64(clients)*4; got != want {
		t.Fatalf("completed %d queries, want %d", got, want)
	}

	// The restarted replica re-syncs the whole history and rejoins, and
	// the stable replica catches up once the load stops.
	fresh := <-restarted
	defer fresh.kill()
	wantEpoch := primary.Current().Epoch()
	deadline := time.Now().Add(30 * time.Second)
	for fresh.daemon.State().Current().Epoch() != wantEpoch ||
		repB.daemon.State().Current().Epoch() != wantEpoch {
		if time.Now().After(deadline) {
			t.Fatalf("replicas stuck: restarted at epoch %d (stats %+v), stable at epoch %d (stats %+v), want %d",
				fresh.daemon.State().Current().Epoch(), fresh.syncer.Stats(),
				repB.daemon.State().Current().Epoch(), repB.syncer.Stats(), wantEpoch)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for rt.Watermark() != wantEpoch {
		if time.Now().After(deadline) {
			t.Fatalf("router watermark stuck: %+v (want %d)", rt.Status(), wantEpoch)
		}
		time.Sleep(10 * time.Millisecond)
	}
	status := rt.Status()
	t.Logf("chaos: %d clients, %d queries, 0 failed; %d hedges, %d failovers, %d shed; watermark %d",
		clients, completed.Load(), status.Hedges, status.Failovers, status.Shed, wantEpoch)
}
