package archive

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dcfail/internal/fot"
)

var t0 = time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC)

func ticket(id uint64, offset time.Duration) fot.Ticket {
	return fot.Ticket{
		ID:       id,
		HostID:   100 + id,
		IDC:      "dc01",
		Position: 3,
		Device:   fot.HDD,
		Slot:     "sdb",
		Type:     "SMARTFail",
		Time:     t0.Add(offset),
		Category: fot.Fixing,
		Action:   fot.ActionRepairOrder,
	}
}

func TestAppendAndQuery(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	const n = 35 // forces rotation across 4 segments
	for i := uint64(1); i <= n; i++ {
		if err := a.Append(ticket(i, time.Duration(i)*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Count(); got != n {
		t.Errorf("count = %d, want %d", got, n)
	}
	// Query everything (open segment included).
	all, err := a.Query(time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != n {
		t.Fatalf("query all = %d, want %d", all.Len(), n)
	}
	for i := 1; i < all.Len(); i++ {
		if all.Tickets[i].Time.Before(all.Tickets[i-1].Time) {
			t.Fatal("query result not sorted")
		}
	}
	// Bounded query.
	sub, err := a.Query(t0.Add(10*time.Hour), t0.Add(20*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 10 {
		t.Errorf("bounded query = %d, want 10", sub.Len())
	}
	for _, tk := range sub.Tickets {
		if tk.Time.Before(t0.Add(10*time.Hour)) || !tk.Time.Before(t0.Add(20*time.Hour)) {
			t.Fatal("ticket outside bounds")
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(a.Segments()); got != 4 {
		t.Errorf("segments = %d, want 4", got)
	}
}

func TestReopenPreservesData(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 12; i++ {
		if err := a.Append(ticket(i, time.Duration(i)*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := Open(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Count(); got != 12 {
		t.Fatalf("reopened count = %d, want 12", got)
	}
	// Appending continues in new segments without clobbering old ones.
	if err := b.Append(ticket(13, 13*time.Hour)); err != nil {
		t.Fatal(err)
	}
	all, err := b.Query(time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != 13 {
		t.Errorf("after reopen+append: %d, want 13", all.Len())
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRebuildMissingMeta(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 7; i++ {
		if err := a.Append(ticket(i, time.Duration(i)*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Delete one sidecar; Open must rebuild it.
	if err := os.Remove(filepath.Join(dir, "seg-000001.meta.json")); err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Count(); got != 7 {
		t.Errorf("count after meta rebuild = %d, want 7", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "seg-000001.meta.json")); err != nil {
		t.Errorf("sidecar not rebuilt: %v", err)
	}
}

func TestSegmentSkippingByIndex(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Two well-separated eras.
	for i := uint64(1); i <= 5; i++ {
		if err := a.Append(ticket(i, time.Duration(i)*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(6); i <= 10; i++ {
		if err := a.Append(ticket(i, 1000*time.Hour+time.Duration(i)*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	early, err := a.Query(time.Time{}, t0.Add(100*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if early.Len() != 5 {
		t.Errorf("early era = %d, want 5", early.Len())
	}
	late, err := a.Query(t0.Add(900*time.Hour), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if late.Len() != 5 {
		t.Errorf("late era = %d, want 5", late.Len())
	}
}

func TestAppendRejectsInvalid(t *testing.T) {
	a, err := Open(t.TempDir(), 5)
	if err != nil {
		t.Fatal(err)
	}
	bad := ticket(1, time.Hour)
	bad.Type = ""
	if err := a.Append(bad); err == nil {
		t.Error("invalid ticket accepted")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendTrace(t *testing.T) {
	a, err := Open(t.TempDir(), 100)
	if err != nil {
		t.Fatal(err)
	}
	tickets := make([]fot.Ticket, 0, 20)
	for i := uint64(1); i <= 20; i++ {
		tickets = append(tickets, ticket(i, time.Duration(i)*time.Minute))
	}
	if err := a.AppendTrace(fot.NewTrace(tickets)); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 20 {
		t.Errorf("count = %d", a.Count())
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseWithoutWrites(t *testing.T) {
	a, err := Open(t.TempDir(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := a.Query(time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Errorf("empty archive returned %d tickets", tr.Len())
	}
}

func TestConcurrentAppends(t *testing.T) {
	a, err := Open(t.TempDir(), 50)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	const perWriter = 40
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := uint64(w*perWriter + i + 1)
				if err := a.Append(ticket(id, time.Duration(id)*time.Minute)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := a.Query(time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != writers*perWriter {
		t.Fatalf("archived %d, want %d", tr.Len(), writers*perWriter)
	}
	seen := map[uint64]bool{}
	for _, tk := range tr.Tickets {
		if seen[tk.ID] {
			t.Fatalf("duplicate ticket %d", tk.ID)
		}
		seen[tk.ID] = true
	}
}
