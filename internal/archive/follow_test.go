package archive

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"dcfail/internal/fot"
)

// drainIDs polls the follower once and returns the ids it yielded.
func drainIDs(t *testing.T, f *Follower) []uint64 {
	t.Helper()
	tickets, err := f.Poll()
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]uint64, 0, len(tickets))
	for _, tk := range tickets {
		ids = append(ids, tk.ID)
	}
	return ids
}

func TestFollowerTailsAcrossSegmentRoll(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, 5) // rotate every 5 tickets
	if err != nil {
		t.Fatal(err)
	}
	f := Follow(dir, Position{})

	// Nothing written yet: empty poll, not an error.
	if ids := drainIDs(t, f); len(ids) != 0 {
		t.Fatalf("poll on empty archive = %v", ids)
	}

	// Fill most of the first segment; the writer has not flushed, so the
	// follower may legitimately see nothing yet — flush by appending past
	// the rotation threshold below. Write 3, flush via Close-free path:
	// use 7 appends so segment 1 finalizes and segment 2 opens.
	next := uint64(1)
	appendN := func(n int) {
		for i := 0; i < n; i++ {
			if err := a.Append(ticket(next, time.Duration(next)*time.Hour)); err != nil {
				t.Fatal(err)
			}
			next++
		}
	}
	appendN(7)
	// Force the open segment's buffered tail to disk the same way a query
	// would, so the tail is visible to the follower.
	if _, err := a.Query(time.Time{}, time.Time{}); err != nil {
		t.Fatal(err)
	}

	ids := drainIDs(t, f)
	if len(ids) != 7 {
		t.Fatalf("first poll = %d tickets (%v), want 7", len(ids), ids)
	}
	for i, id := range ids {
		if id != uint64(i+1) {
			t.Fatalf("first poll ids = %v, want 1..7 in order", ids)
		}
	}

	// Resume from the persisted position with a fresh follower: nothing
	// new yet.
	f2 := Follow(dir, f.Pos())
	if ids := drainIDs(t, f2); len(ids) != 0 {
		t.Fatalf("resumed poll with no new data = %v", ids)
	}

	// Write across another roll (segment 2 finalizes, segment 3 opens)
	// and confirm the resumed follower sees exactly the new tickets.
	appendN(6)
	if err := a.Close(); err != nil { // finalize everything
		t.Fatal(err)
	}
	ids = drainIDs(t, f2)
	if len(ids) != 6 {
		t.Fatalf("poll after roll = %d tickets (%v), want 6", len(ids), ids)
	}
	for i, id := range ids {
		if id != uint64(8+i) {
			t.Fatalf("poll after roll ids = %v, want 8..13 in order", ids)
		}
	}
	// Fully drained.
	if ids := drainIDs(t, f2); len(ids) != 0 {
		t.Fatalf("drained archive still yields %v", ids)
	}
}

func TestFollowerLeavesTornTailForNextPoll(t *testing.T) {
	dir := t.TempDir()
	// This test hand-appends raw JSON to the segment file, so pin the
	// writer to the JSON codec; the binary mirror lives in binary_test.go.
	a, err := OpenWith(dir, Options{MaxPerSegment: 100, Codec: CodecJSON})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Append(ticket(1, time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a writer mid-line: append half a JSON object with no
	// newline to the finalized segment file.
	seg := filepath.Join(dir, "seg-000001.jsonl")
	fh, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.WriteString(`{"id":2,"host_id":102,`); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}

	f := Follow(dir, Position{})
	if ids := drainIDs(t, f); len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("poll with torn tail = %v, want [1]", ids)
	}

	// The writer finishes the line; the follower picks it up where it
	// left off.
	fh, err = os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	rest := `"host_idc":"dc01","position":3,"error_device":"hdd","error_slot":"sdb",` +
		`"error_type":"SMARTFail","error_time":"2014-01-01T02:00:00Z","category":"D_fixing","action":"repair_order"}` + "\n"
	if _, err := fh.WriteString(rest); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}
	if ids := drainIDs(t, f); len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("poll after tail completed = %v, want [2]", ids)
	}
}

// TestFollowerResumesAcrossRollWithTornTail is the crash-adjacent worst
// case the replica tier leans on: a segment is polled while its last
// frame is torn mid-line, the follower state is persisted, and before
// the next poll the writer both completes that line AND rolls to a new
// segment. A follower resumed from the persisted position must yield the
// repaired tail first and then the new segment's rows — no duplicate, no
// loss, in archive order.
func TestFollowerResumesAcrossRollWithTornTail(t *testing.T) {
	dir := t.TempDir()
	line := func(id uint64) []byte {
		b, err := fot.MarshalJSONLine(ticket(id, time.Duration(id)*time.Hour))
		if err != nil {
			t.Fatal(err)
		}
		return append(b, '\n')
	}

	// Segment 1: ticket 1 complete, ticket 2 torn halfway through its
	// frame (the writer crashed or is mid-write; no trailing newline).
	torn := line(2)
	half := len(torn) / 2
	seg1 := filepath.Join(dir, "seg-000001.jsonl")
	if err := os.WriteFile(seg1, append(line(1), torn[:half]...), 0o644); err != nil {
		t.Fatal(err)
	}

	f := Follow(dir, Position{})
	if ids := drainIDs(t, f); len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("poll with torn tail = %v, want [1]", ids)
	}
	pos := f.Pos()
	if pos.Segment != "seg-000001.jsonl" || pos.Offset != 1 {
		t.Fatalf("persisted position = %+v, want seg-000001.jsonl/1", pos)
	}

	// The writer recovers: it finishes ticket 2's line, finalizes the
	// segment, and rolls — tickets 3 and 4 land in segment 2.
	fh, err := os.OpenFile(seg1, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.Write(torn[half:]); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}
	seg2 := filepath.Join(dir, "seg-000002.jsonl")
	if err := os.WriteFile(seg2, append(line(3), line(4)...), 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume from the persisted position with a brand-new follower, as a
	// restarted fotqueryd would.
	f2 := Follow(dir, pos)
	ids := drainIDs(t, f2)
	if len(ids) != 3 || ids[0] != 2 || ids[1] != 3 || ids[2] != 4 {
		t.Fatalf("resumed poll across roll = %v, want [2 3 4]", ids)
	}
	if got := f2.Pos(); got.Segment != "seg-000002.jsonl" || got.Offset != 2 {
		t.Fatalf("position after roll = %+v, want seg-000002.jsonl/2", got)
	}
	if ids := drainIDs(t, f2); len(ids) != 0 {
		t.Fatalf("drained archive still yields %v", ids)
	}
}
