package archive

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dcfail/internal/archive/segment"
	"dcfail/internal/fot"
)

// Position records how far a Follower has consumed an archive: the name
// of the segment file it is inside and the number of tickets already
// read from it. Segments are consumed strictly in base-name order, so
// (segment, offset) is a total resume point. The zero value means
// "start of the archive".
//
// A binary segment changes file name when its append log (.fotlog) is
// compacted into the immutable .fotseg: the base name and the ticket
// order are identical, so a persisted offset carries over — Followers
// compare positions by base name, not by file name.
type Position struct {
	Segment string `json:"segment"`
	Offset  int    `json:"offset"` // tickets consumed from Segment
}

// Follower is a tail/follow reader over an archive directory written by
// another process (e.g. fmsd archiving on rotation). Each Poll returns
// every ticket appended since the previous Poll, in archive order,
// resuming across segment rolls: a segment that was partially read last
// time is re-opened and the already-consumed prefix skipped, and newly
// appeared segments are picked up in name order. Both archive codecs
// are tailed transparently — JSON-lines segments, live binary logs
// (torn trailing frames deferred to the next poll, exactly like torn
// JSON lines), and finalized columnar segments. A Follower never holds
// files open between polls, so the writer may rotate freely.
//
// A Follower is not safe for concurrent use; wrap it in the caller's
// own synchronization if multiple goroutines poll.
type Follower struct {
	dir string
	pos Position
}

// Follow creates a tail reader over dir, resuming from pos (use the zero
// Position to start at the beginning). The directory does not need to
// exist yet — a missing directory polls as empty until the writer
// creates it.
func Follow(dir string, pos Position) *Follower {
	return &Follower{dir: dir, pos: pos}
}

// Pos returns the current resume point. Persist it and hand it back to
// Follow to survive a restart without re-reading the archive.
func (f *Follower) Pos() Position { return f.pos }

// Poll returns the tickets appended since the last Poll (nil when there
// is nothing new). The final, possibly still-growing segment is read
// too: tickets are returned as soon as their full line or frame is on
// disk, and the next Poll continues after them whether or not the
// segment has been finalized since.
func (f *Follower) Poll() ([]fot.Ticket, error) {
	names, err := f.segmentNames()
	if err != nil {
		return nil, err
	}
	posBase := baseName(f.pos.Segment)
	var out []fot.Ticket
	for _, name := range names {
		base := baseName(name)
		if f.pos.Segment != "" && base < posBase {
			continue // fully consumed in an earlier poll
		}
		skip := 0
		if base == posBase {
			skip = f.pos.Offset
		}
		tickets, err := readSegmentTickets(filepath.Join(f.dir, name), skip)
		if err != nil {
			return nil, err
		}
		out = append(out, tickets...)
		f.pos = Position{Segment: name, Offset: skip + len(tickets)}
	}
	return out, nil
}

// segmentNames lists the archive's segment files in consumption order,
// one file per segment: when a base name exists both as a leftover
// .fotlog and its compacted .fotseg, the finalized segment wins (it is
// a complete superset of the log).
func (f *Follower) segmentNames() ([]string, error) {
	entries, err := os.ReadDir(f.dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("archive: follow read dir: %w", err)
	}
	best := make(map[string]string)
	rank := func(name string) int {
		switch {
		case strings.HasSuffix(name, extSeg):
			return 2
		case strings.HasSuffix(name, extJSON):
			return 1
		default:
			return 0
		}
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "seg-") {
			continue
		}
		if !strings.HasSuffix(name, extJSON) && !strings.HasSuffix(name, extSeg) && !strings.HasSuffix(name, extLog) {
			continue
		}
		base := baseName(name)
		if cur, ok := best[base]; !ok || rank(name) > rank(cur) {
			best[base] = name
		}
	}
	bases := make([]string, 0, len(best))
	for b := range best {
		bases = append(bases, b)
	}
	sort.Strings(bases)
	names := make([]string, 0, len(bases))
	for _, b := range bases {
		names = append(names, best[b])
	}
	return names, nil
}

// readSegmentTickets reads one segment file, skipping the first skip
// tickets, dispatching on the on-disk codec.
func readSegmentTickets(path string, skip int) ([]fot.Ticket, error) {
	switch {
	case strings.HasSuffix(path, extSeg):
		tickets, _, err := segment.Read(path)
		if err != nil {
			if os.IsNotExist(err) {
				return nil, nil // raced with the writer; retry next poll
			}
			return nil, err
		}
		if skip >= len(tickets) {
			return nil, nil
		}
		return tickets[skip:], nil
	case strings.HasSuffix(path, extLog):
		return readLogFrames(path, skip)
	default:
		return readSegmentLines(path, skip)
	}
}

// readLogFrames tails a live binary append log. A torn trailing frame
// (the writer is mid-append, or crashed mid-frame) is left for a later
// poll — or for Open's recovery, which discards it frame-exactly.
func readLogFrames(path string, skip int) ([]fot.Ticket, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil // compacted away between ReadDir and here
		}
		return nil, fmt.Errorf("archive: follow open log: %w", err)
	}
	tickets, _, err := decodeLogFrames(raw)
	if err != nil {
		return nil, fmt.Errorf("archive: follow %s: %w", filepath.Base(path), err)
	}
	if skip >= len(tickets) {
		return nil, nil
	}
	return tickets[skip:], nil
}

// readSegmentLines reads a JSON segment, skipping the first skip
// tickets. A trailing line without a newline is left for the next poll:
// the writer may still be in the middle of it.
func readSegmentLines(path string, skip int) ([]fot.Ticket, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil // rotated away between ReadDir and here
		}
		return nil, fmt.Errorf("archive: follow open segment: %w", err)
	}
	// Drop a torn tail (no terminating newline yet) — it will be complete
	// on a later poll.
	i := bytes.LastIndexByte(raw, '\n')
	if i < 0 {
		return nil, nil
	}
	raw = raw[:i+1]
	var out []fot.Ticket
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		line++
		if line <= skip {
			continue
		}
		t, err := fot.UnmarshalJSONLine(b)
		if err != nil {
			return nil, fmt.Errorf("archive: follow %s line %d: %w", filepath.Base(path), line, err)
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("archive: follow %s: %w", filepath.Base(path), err)
	}
	return out, nil
}
