package archive

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dcfail/internal/fot"
)

// Position records how far a Follower has consumed an archive: the name
// of the segment it is inside and the number of tickets already read from
// it. Segments are consumed strictly in name order, so (segment, offset)
// is a total resume point. The zero value means "start of the archive".
type Position struct {
	Segment string `json:"segment"`
	Offset  int    `json:"offset"` // tickets consumed from Segment
}

// Follower is a tail/follow reader over an archive directory written by
// another process (e.g. fmsd archiving on rotation). Each Poll returns
// every ticket appended since the previous Poll, in archive order,
// resuming across segment rolls: a segment that was partially read last
// time is re-opened and the already-consumed prefix skipped, and newly
// appeared segments are picked up in name order. A Follower never holds
// files open between polls, so the writer may rotate freely.
//
// A Follower is not safe for concurrent use; wrap it in the caller's own
// synchronization if multiple goroutines poll.
type Follower struct {
	dir string
	pos Position
}

// Follow creates a tail reader over dir, resuming from pos (use the zero
// Position to start at the beginning). The directory does not need to
// exist yet — a missing directory polls as empty until the writer
// creates it.
func Follow(dir string, pos Position) *Follower {
	return &Follower{dir: dir, pos: pos}
}

// Pos returns the current resume point. Persist it and hand it back to
// Follow to survive a restart without re-reading the archive.
func (f *Follower) Pos() Position { return f.pos }

// Poll returns the tickets appended since the last Poll (nil when there
// is nothing new). The final, possibly still-growing segment is read too:
// tickets are returned as soon as their full line is on disk, and the
// next Poll continues after them whether or not the segment has been
// finalized with a sidecar since.
func (f *Follower) Poll() ([]fot.Ticket, error) {
	names, err := f.segmentNames()
	if err != nil {
		return nil, err
	}
	var out []fot.Ticket
	for _, name := range names {
		if name < f.pos.Segment {
			continue // fully consumed in an earlier poll
		}
		skip := 0
		if name == f.pos.Segment {
			skip = f.pos.Offset
		}
		tickets, err := readSegmentLines(filepath.Join(f.dir, name), skip)
		if err != nil {
			return nil, err
		}
		out = append(out, tickets...)
		f.pos = Position{Segment: name, Offset: skip + len(tickets)}
	}
	return out, nil
}

// segmentNames lists the archive's segment files in consumption order.
func (f *Follower) segmentNames() ([]string, error) {
	entries, err := os.ReadDir(f.dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("archive: follow read dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "seg-") && strings.HasSuffix(e.Name(), ".jsonl") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// readSegmentLines reads a segment, skipping the first skip tickets. A
// trailing line without a newline is left for the next poll: the writer
// may still be in the middle of it.
func readSegmentLines(path string, skip int) ([]fot.Ticket, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil // rotated away between ReadDir and here
		}
		return nil, fmt.Errorf("archive: follow open segment: %w", err)
	}
	// Drop a torn tail (no terminating newline yet) — it will be complete
	// on a later poll.
	i := bytes.LastIndexByte(raw, '\n')
	if i < 0 {
		return nil, nil
	}
	raw = raw[:i+1]
	var out []fot.Ticket
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		line++
		if line <= skip {
			continue
		}
		t, err := fot.UnmarshalJSONLine(b)
		if err != nil {
			return nil, fmt.Errorf("archive: follow %s line %d: %w", filepath.Base(path), line, err)
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("archive: follow %s: %w", filepath.Base(path), err)
	}
	return out, nil
}
