package archive

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dcfail/internal/archive/segment"
	"dcfail/internal/fot"
	"dcfail/internal/wire"
)

func TestBinaryArchiveWritesColumnarSegments(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, 5) // binary is the default codec
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 12; i++ {
		if err := a.Append(ticket(i, time.Duration(i)*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	segs := a.Segments()
	if len(segs) != 3 {
		t.Fatalf("segments = %v, want 3", segs)
	}
	for _, s := range segs {
		if !strings.HasSuffix(s, ".fotseg") {
			t.Fatalf("binary archive produced non-columnar segment %s", s)
		}
	}
	// Logs are compacted away after finalization.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".fotlog") {
			t.Fatalf("leftover log %s after clean close", e.Name())
		}
	}
	all, err := a.Query(time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != 12 {
		t.Fatalf("query all = %d, want 12", all.Len())
	}
}

// TestTornBinaryTailRecovery mirrors the WAL/JSON torn-tail tests for
// the binary log: a crash mid-frame must come back with every complete
// frame intact and the torn tail discarded frame-exactly.
func TestTornBinaryTailRecovery(t *testing.T) {
	writerDir := t.TempDir()
	a, err := Open(writerDir, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 7; i++ {
		if err := a.Append(ticket(i, time.Duration(i)*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	// Flush the log to disk the way a query would, then "crash": copy the
	// log with its final frame cut in half into a fresh directory.
	if _, err := a.Query(time.Time{}, time.Time{}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(writerDir, "seg-000001.fotlog"))
	if err != nil {
		t.Fatal(err)
	}
	crashDir := t.TempDir()
	torn := raw[:len(raw)-3]
	if err := os.WriteFile(filepath.Join(crashDir, "seg-000001.fotlog"), torn, 0o644); err != nil {
		t.Fatal(err)
	}

	b, err := Open(crashDir, 100)
	if err != nil {
		t.Fatalf("open after torn crash: %v", err)
	}
	if got := b.Count(); got != 6 {
		t.Fatalf("recovered count = %d, want 6 (torn 7th frame dropped)", got)
	}
	if b.TornBytes() == 0 {
		t.Fatal("recovery did not report torn bytes")
	}
	if _, err := os.Stat(filepath.Join(crashDir, "seg-000001.fotseg")); err != nil {
		t.Fatalf("recovered segment not finalized: %v", err)
	}
	if _, err := os.Stat(filepath.Join(crashDir, "seg-000001.fotlog")); !os.IsNotExist(err) {
		t.Fatalf("recovered log not removed: %v", err)
	}
	// The recovered archive keeps working: appends land in a new segment
	// and queries see everything.
	if err := b.Append(ticket(8, 8*time.Hour)); err != nil {
		t.Fatal(err)
	}
	all, err := b.Query(time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != 7 {
		t.Fatalf("query after recovery = %d, want 7", all.Len())
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStaleLogNextToValidSegmentIsRemoved covers the other crash
// window: finalization wrote and fsynced the .fotseg but crashed before
// removing the log. Open must trust the validated segment and drop the
// log without double-counting.
func TestStaleLogNextToValidSegmentIsRemoved(t *testing.T) {
	dir := t.TempDir()
	tickets := []fot.Ticket{ticket(1, time.Hour), ticket(2, 2*time.Hour)}
	if _, err := segment.Write(filepath.Join(dir, "seg-000001.fotseg"), tickets); err != nil {
		t.Fatal(err)
	}
	enc := wire.NewEncoder()
	var log []byte
	for i := range tickets {
		log = enc.AppendTicket(log, &tickets[i])
	}
	if err := os.WriteFile(filepath.Join(dir, "seg-000001.fotlog"), log, 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := Open(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Count(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "seg-000001.fotlog")); !os.IsNotExist(err) {
		t.Fatalf("stale log survived open: %v", err)
	}
}

// TestOpenValidatesSegmentFooters is the sidecar-rebuild fix: a valid
// sidecar must not make Open trust a segment whose CRC'd footer no
// longer checks out, and a rebuild without a sidecar must fail on
// block-level corruption too.
func TestOpenValidatesSegmentFooters(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 4; i++ {
		if err := a.Append(ticket(i, time.Duration(i)*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	seg := filepath.Join(dir, "seg-000001.fotseg")
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the footer while the sidecar still looks fine.
	bad := append([]byte(nil), raw...)
	bad[len(bad)-6] ^= 0xff
	if err := os.WriteFile(seg, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, 2); !errors.Is(err, segment.ErrCorrupt) {
		t.Fatalf("open trusted a sidecar over a corrupt footer: %v", err)
	}

	// Restore the footer but corrupt a column block, and delete the
	// sidecar: the rebuild path reads the full segment and must catch it.
	bad = append([]byte(nil), raw...)
	bad[len(raw)/2] ^= 0xff
	if err := os.WriteFile(seg, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "seg-000001.meta.json")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, 2); !errors.Is(err, segment.ErrCorrupt) {
		t.Fatalf("meta rebuild trusted corrupt segment bytes: %v", err)
	}
}

// TestFollowerLeavesTornBinaryTailForNextPoll mirrors the JSON torn-tail
// follower test over a live binary log.
func TestFollowerLeavesTornBinaryTailForNextPoll(t *testing.T) {
	dir := t.TempDir()
	enc := wire.NewEncoder()
	t1, t2 := ticket(1, time.Hour), ticket(2, 2*time.Hour)
	frame1 := enc.AppendTicket(nil, &t1)
	frame2 := enc.AppendTicket(nil, &t2)
	half := len(frame2) / 2
	log := filepath.Join(dir, "seg-000001.fotlog")
	if err := os.WriteFile(log, append(append([]byte(nil), frame1...), frame2[:half]...), 0o644); err != nil {
		t.Fatal(err)
	}

	f := Follow(dir, Position{})
	if ids := drainIDs(t, f); len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("poll with torn binary tail = %v, want [1]", ids)
	}

	fh, err := os.OpenFile(log, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.Write(frame2[half:]); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}
	if ids := drainIDs(t, f); len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("poll after binary tail completed = %v, want [2]", ids)
	}
}

// TestFollowerResumesAcrossCompactionWithTornTail is the binary twin of
// the JSON across-roll torn-tail test, with the extra wrinkle that the
// segment changes file name when the log is compacted: a follower
// persisted mid-log must resume exactly after its offset inside the
// compacted .fotseg, then pick up the next segment.
func TestFollowerResumesAcrossCompactionWithTornTail(t *testing.T) {
	dir := t.TempDir()
	enc := wire.NewEncoder()
	t1, t2 := ticket(1, time.Hour), ticket(2, 2*time.Hour)
	frame1 := enc.AppendTicket(nil, &t1)
	frame2 := enc.AppendTicket(nil, &t2)
	half := len(frame2) / 2
	log := filepath.Join(dir, "seg-000001.fotlog")
	if err := os.WriteFile(log, append(append([]byte(nil), frame1...), frame2[:half]...), 0o644); err != nil {
		t.Fatal(err)
	}

	f := Follow(dir, Position{})
	if ids := drainIDs(t, f); len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("poll with torn tail = %v, want [1]", ids)
	}
	pos := f.Pos()
	if pos.Segment != "seg-000001.fotlog" || pos.Offset != 1 {
		t.Fatalf("persisted position = %+v, want seg-000001.fotlog/1", pos)
	}

	// The writer recovers: the log is completed and compacted into its
	// columnar segment, and a second (already finalized) segment appears.
	if _, err := segment.Write(filepath.Join(dir, "seg-000001.fotseg"), []fot.Ticket{t1, t2}); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(log); err != nil {
		t.Fatal(err)
	}
	t3, t4 := ticket(3, 3*time.Hour), ticket(4, 4*time.Hour)
	if _, err := segment.Write(filepath.Join(dir, "seg-000002.fotseg"), []fot.Ticket{t3, t4}); err != nil {
		t.Fatal(err)
	}

	f2 := Follow(dir, pos)
	ids := drainIDs(t, f2)
	if len(ids) != 3 || ids[0] != 2 || ids[1] != 3 || ids[2] != 4 {
		t.Fatalf("resumed poll across compaction = %v, want [2 3 4]", ids)
	}
	if got := f2.Pos(); got.Segment != "seg-000002.fotseg" || got.Offset != 2 {
		t.Fatalf("position after compaction = %+v, want seg-000002.fotseg/2", got)
	}
	if ids := drainIDs(t, f2); len(ids) != 0 {
		t.Fatalf("drained archive still yields %v", ids)
	}
}

// TestMixedCodecDirectory proves an old JSON archive keeps working when
// reopened with the binary default: old segments stay readable, new
// ones are columnar, and queries span both.
func TestMixedCodecDirectory(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenWith(dir, Options{MaxPerSegment: 3, Codec: CodecJSON})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 6; i++ {
		if err := a.Append(ticket(i, time.Duration(i)*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := Open(dir, 3) // binary default
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(7); i <= 9; i++ {
		if err := b.Append(ticket(i, time.Duration(i)*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	all, err := b.Query(time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != 9 {
		t.Fatalf("mixed query = %d, want 9", all.Len())
	}
	for i, tk := range all.Tickets {
		if tk.ID != uint64(i+1) {
			t.Fatalf("mixed query order: %v", all.Tickets)
		}
	}
	segs := b.Segments()
	if len(segs) != 3 || !strings.HasSuffix(segs[0], ".jsonl") || !strings.HasSuffix(segs[2], ".fotseg") {
		t.Fatalf("segments = %v", segs)
	}

	// A follower over the mixed directory sees one coherent stream.
	fw := Follow(dir, Position{})
	ids := drainIDs(t, fw)
	if len(ids) != 9 {
		t.Fatalf("mixed follow = %v", ids)
	}
}
