package segment

import (
	"errors"
	"testing"
)

// FuzzDecodeSegment drives the segment decoder with arbitrary bytes:
// it must never panic, and every rejection must be a typed error.
func FuzzDecodeSegment(f *testing.F) {
	for _, n := range []int{0, 1, 5, 40} {
		data, _, err := Encode(testTickets(n))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, err := Decode(data)
		if err != nil && !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("untyped error: %v", err)
		}
	})
}
