// Package segment implements the archive's immutable columnar on-disk
// segment format (.fotseg): one file per rotation, holding the segment's
// tickets decomposed into fixed-width column blocks plus one string
// table, mirroring the in-memory fot.Columns layout so a cold start is
// "open + validate" instead of "reparse every JSON line".
//
// # File layout
//
// All integers are little-endian. The file is:
//
//	offset  size  field
//	0       8     magic "FOTSEG1\n"
//	8       ...   column blocks, back to back
//	EOF-32  32    footer
//
// Each block is:
//
//	offset  size  field
//	0       1     block id (blk* constant)
//	1       4     data length, uint32
//	5       n     data
//	5+n     4     CRC-32 (IEEE) of data, uint32
//
// The footer is:
//
//	offset  size  field
//	0       4     row count, uint32
//	4       4     block count, uint32
//	8       8     min error_time, int64 unix-nanos
//	16      8     max error_time, int64 unix-nanos
//	24      4     CRC-32 (IEEE) of footer bytes 0..24, uint32
//	28      4     trailer magic "FSEG"
//
// Column blocks (one value per row, fixed width, so a reader can mmap
// the file and address row i of any column directly):
//
//	id  column        width  encoding
//	1   error_time    8      int64 unix-nanos
//	2   ticket id     8      uint64
//	3   host id       8      uint64
//	4   device        1      Component code
//	5   category      1      Category code
//	6   action        1      Action code
//	7   position      4      int32
//	8   op_time       8      int64 unix-nanos, MinInt64 = unset
//	9   deploy_time   8      int64 unix-nanos, MinInt64 = unset
//	10  string table  —      uvarint count, then per string uvarint len + bytes
//	11+ symbol cols   4      uint32 index into the string table, in field
//	                         order hostname, idc, rack, slot, type, detail,
//	                         operator, product_line, model (ids 11..19)
//
// # Versioning
//
// The magic byte '1' is the format version; an incompatible layout
// change bumps it and old readers reject the file cleanly. Readers skip
// unknown block ids (after checking their CRC), so new optional columns
// can be added without a version bump.
//
// # Integrity
//
// Decode validates the header magic, the footer magic and CRC, and
// every block CRC before materializing a single ticket; ReadMeta
// validates just the header and footer — the cheap "open + validate"
// path the archive uses on startup. Corruption anywhere is a typed
// error (ErrTruncated for a short file, ErrCorrupt otherwise), never a
// panic.
package segment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"time"

	"dcfail/internal/fot"
)

// magic identifies a v1 segment file.
const magic = "FOTSEG1\n"

// trailerMagic ends the footer, catching truncation cheaply.
const trailerMagic = 0x47455346 // "FSEG" little-endian

// footerSize is the fixed footer length.
const footerSize = 32

// noTimeNS is the column sentinel for a zero time.Time, matching the
// wire codec's choice (math.MinInt64 is outside time.Time's unix-nano
// range).
const noTimeNS = math.MinInt64

// Block ids.
const (
	blkTime       = 1
	blkID         = 2
	blkHost       = 3
	blkDevice     = 4
	blkCategory   = 5
	blkAction     = 6
	blkPosition   = 7
	blkOpTime     = 8
	blkDeployTime = 9
	blkStrings    = 10
	blkHostname   = 11
	blkIDC        = 12
	blkRack       = 13
	blkSlot       = 14
	blkType       = 15
	blkDetail     = 16
	blkOperator   = 17
	blkLine       = 18
	blkModel      = 19
)

// symbolBlocks maps block id to ticket string field, in file order.
var symbolBlocks = [...]int{blkHostname, blkIDC, blkRack, blkSlot, blkType, blkDetail, blkOperator, blkLine, blkModel}

// Typed errors, classified with errors.Is.
var (
	// ErrTruncated marks a file shorter than its structure declares.
	ErrTruncated = errors.New("segment: truncated file")
	// ErrCorrupt marks a magic, CRC, or structural mismatch.
	ErrCorrupt = errors.New("segment: corrupt file")
)

// Meta is a segment's self-describing index: what the archive sidecar
// caches and the footer makes authoritative.
type Meta struct {
	Rows    int
	MinTime time.Time
	MaxTime time.Time
}

func timeNS(t time.Time) int64 {
	if t.IsZero() {
		return noTimeNS
	}
	return t.UnixNano()
}

func nsTime(ns int64) time.Time {
	if ns == noTimeNS {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}

// appendBlock wraps data in a block envelope.
func appendBlock(dst []byte, id byte, data []byte) []byte {
	dst = append(dst, id)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(data)))
	dst = append(dst, data...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(data))
}

// Encode serializes tickets into segment-file bytes.
func Encode(tickets []fot.Ticket) ([]byte, Meta, error) {
	if len(tickets) >= math.MaxUint32 {
		return nil, Meta{}, fmt.Errorf("segment: %d rows exceed format capacity", len(tickets))
	}
	meta := Meta{Rows: len(tickets)}
	for i := range tickets {
		tm := tickets[i].Time
		if i == 0 || tm.Before(meta.MinTime) {
			meta.MinTime = tm
		}
		if i == 0 || tm.After(meta.MaxTime) {
			meta.MaxTime = tm
		}
	}

	// Intern the nine string fields into one table, first-seen order.
	symIDs := make(map[string]uint32)
	var symList []string
	intern := func(s string) uint32 {
		if id, ok := symIDs[s]; ok {
			return id
		}
		id := uint32(len(symList))
		symIDs[s] = id
		symList = append(symList, s)
		return id
	}

	n := len(tickets)
	i64s := make([]byte, 0, 8*n)
	out := append(make([]byte, 0, 64*n+len(magic)+footerSize), magic...)
	blocks := 0

	appendI64Block := func(id byte, get func(*fot.Ticket) int64) {
		i64s = i64s[:0]
		for i := range tickets {
			i64s = binary.LittleEndian.AppendUint64(i64s, uint64(get(&tickets[i])))
		}
		out = appendBlock(out, id, i64s)
		blocks++
	}
	appendU8Block := func(id byte, get func(*fot.Ticket) byte) {
		i64s = i64s[:0]
		for i := range tickets {
			i64s = append(i64s, get(&tickets[i]))
		}
		out = appendBlock(out, id, i64s)
		blocks++
	}
	appendU32Block := func(id byte, get func(*fot.Ticket) uint32) {
		i64s = i64s[:0]
		for i := range tickets {
			i64s = binary.LittleEndian.AppendUint32(i64s, get(&tickets[i]))
		}
		out = appendBlock(out, id, i64s)
		blocks++
	}

	appendI64Block(blkTime, func(t *fot.Ticket) int64 { return timeNS(t.Time) })
	appendI64Block(blkID, func(t *fot.Ticket) int64 { return int64(t.ID) })
	appendI64Block(blkHost, func(t *fot.Ticket) int64 { return int64(t.HostID) })
	appendU8Block(blkDevice, func(t *fot.Ticket) byte { return byte(t.Device) })
	appendU8Block(blkCategory, func(t *fot.Ticket) byte { return byte(t.Category) })
	appendU8Block(blkAction, func(t *fot.Ticket) byte { return byte(t.Action) })
	appendU32Block(blkPosition, func(t *fot.Ticket) uint32 { return uint32(int32(t.Position)) })
	appendI64Block(blkOpTime, func(t *fot.Ticket) int64 { return timeNS(t.OpTime) })
	appendI64Block(blkDeployTime, func(t *fot.Ticket) int64 { return timeNS(t.DeployTime) })

	// Symbol columns must intern before the table block is emitted, so
	// build them first, then splice the table ahead of them in id order.
	symCols := make([][]byte, len(symbolBlocks))
	field := func(t *fot.Ticket, which int) string {
		switch which {
		case blkHostname:
			return t.Hostname
		case blkIDC:
			return t.IDC
		case blkRack:
			return t.Rack
		case blkSlot:
			return t.Slot
		case blkType:
			return t.Type
		case blkDetail:
			return t.Detail
		case blkOperator:
			return t.Operator
		case blkLine:
			return t.ProductLine
		default:
			return t.Model
		}
	}
	for ci, id := range symbolBlocks {
		col := make([]byte, 0, 4*n)
		for i := range tickets {
			col = binary.LittleEndian.AppendUint32(col, intern(field(&tickets[i], id)))
		}
		symCols[ci] = col
	}
	var table []byte
	table = binary.AppendUvarint(table, uint64(len(symList)))
	for _, s := range symList {
		table = binary.AppendUvarint(table, uint64(len(s)))
		table = append(table, s...)
	}
	out = appendBlock(out, blkStrings, table)
	blocks++
	for ci, id := range symbolBlocks {
		out = appendBlock(out, byte(id), symCols[ci])
		blocks++
	}

	// Footer.
	foot := make([]byte, 0, footerSize)
	foot = binary.LittleEndian.AppendUint32(foot, uint32(n))
	foot = binary.LittleEndian.AppendUint32(foot, uint32(blocks))
	foot = binary.LittleEndian.AppendUint64(foot, uint64(timeNS(meta.MinTime)))
	foot = binary.LittleEndian.AppendUint64(foot, uint64(timeNS(meta.MaxTime)))
	foot = binary.LittleEndian.AppendUint32(foot, crc32.ChecksumIEEE(foot))
	foot = binary.LittleEndian.AppendUint32(foot, trailerMagic)
	out = append(out, foot...)
	return out, meta, nil
}

// Write encodes tickets and writes them to path, fsyncing before Close
// so the segment is durable before any sidecar that references it is
// written (the archive's fsync-before-sidecar contract). An existing
// file at path is replaced — the torn-recovery path re-finalizes a
// segment whose previous finalization crashed midway.
func Write(path string, tickets []fot.Ticket) (Meta, error) {
	buf, meta, err := Encode(tickets)
	if err != nil {
		return Meta{}, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return Meta{}, fmt.Errorf("segment: create: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		//lint:ignore errdrop the write error is what matters; close of a failed fd is best-effort cleanup
		f.Close()
		return Meta{}, fmt.Errorf("segment: write: %w", err)
	}
	if err := f.Sync(); err != nil {
		//lint:ignore errdrop the sync error is what matters; close of a failed fd is best-effort cleanup
		f.Close()
		return Meta{}, fmt.Errorf("segment: fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return Meta{}, fmt.Errorf("segment: close: %w", err)
	}
	return meta, nil
}

// parseFooter validates the trailer magic and footer CRC of data and
// returns the declared row and block counts plus the time span.
func parseFooter(data []byte) (rows, blocks int, meta Meta, err error) {
	if len(data) < len(magic)+footerSize {
		return 0, 0, Meta{}, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return 0, 0, Meta{}, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	foot := data[len(data)-footerSize:]
	if binary.LittleEndian.Uint32(foot[28:]) != trailerMagic {
		return 0, 0, Meta{}, fmt.Errorf("%w: bad trailer magic", ErrCorrupt)
	}
	if crc32.ChecksumIEEE(foot[:24]) != binary.LittleEndian.Uint32(foot[24:28]) {
		return 0, 0, Meta{}, fmt.Errorf("%w: footer CRC mismatch", ErrCorrupt)
	}
	rows = int(binary.LittleEndian.Uint32(foot[0:4]))
	blocks = int(binary.LittleEndian.Uint32(foot[4:8]))
	meta = Meta{
		Rows:    rows,
		MinTime: nsTime(int64(binary.LittleEndian.Uint64(foot[8:16]))),
		MaxTime: nsTime(int64(binary.LittleEndian.Uint64(foot[16:24]))),
	}
	return rows, blocks, meta, nil
}

// Decode materializes the tickets of a segment file image, validating
// header, footer, and every block CRC first.
func Decode(data []byte) ([]fot.Ticket, Meta, error) {
	rows, blockCount, meta, err := parseFooter(data)
	if err != nil {
		return nil, Meta{}, err
	}
	body := data[len(magic) : len(data)-footerSize]
	cols := make(map[byte][]byte, blockCount)
	seen := 0
	for pos := 0; pos < len(body); {
		if len(body)-pos < 5 {
			return nil, Meta{}, fmt.Errorf("%w: short block header", ErrTruncated)
		}
		id := body[pos]
		n := binary.LittleEndian.Uint32(body[pos+1 : pos+5])
		pos += 5
		if uint32(len(body)-pos) < n+4 {
			return nil, Meta{}, fmt.Errorf("%w: block %d overruns file", ErrTruncated, id)
		}
		blockData := body[pos : pos+int(n)]
		pos += int(n)
		if crc32.ChecksumIEEE(blockData) != binary.LittleEndian.Uint32(body[pos:pos+4]) {
			return nil, Meta{}, fmt.Errorf("%w: block %d CRC mismatch", ErrCorrupt, id)
		}
		pos += 4
		seen++
		if _, dup := cols[id]; dup {
			return nil, Meta{}, fmt.Errorf("%w: duplicate block %d", ErrCorrupt, id)
		}
		cols[id] = blockData // unknown ids are CRC-checked then ignored
	}
	if seen != blockCount {
		return nil, Meta{}, fmt.Errorf("%w: %d blocks, footer declares %d", ErrCorrupt, seen, blockCount)
	}

	need := func(id byte, width int) ([]byte, error) {
		b, ok := cols[id]
		if !ok {
			return nil, fmt.Errorf("%w: missing block %d", ErrCorrupt, id)
		}
		if len(b) != rows*width {
			return nil, fmt.Errorf("%w: block %d is %d bytes, want %d", ErrCorrupt, id, len(b), rows*width)
		}
		return b, nil
	}
	times, err := need(blkTime, 8)
	if err != nil {
		return nil, Meta{}, err
	}
	ids, err := need(blkID, 8)
	if err != nil {
		return nil, Meta{}, err
	}
	hosts, err := need(blkHost, 8)
	if err != nil {
		return nil, Meta{}, err
	}
	devices, err := need(blkDevice, 1)
	if err != nil {
		return nil, Meta{}, err
	}
	categories, err := need(blkCategory, 1)
	if err != nil {
		return nil, Meta{}, err
	}
	actions, err := need(blkAction, 1)
	if err != nil {
		return nil, Meta{}, err
	}
	positions, err := need(blkPosition, 4)
	if err != nil {
		return nil, Meta{}, err
	}
	opTimes, err := need(blkOpTime, 8)
	if err != nil {
		return nil, Meta{}, err
	}
	deployTimes, err := need(blkDeployTime, 8)
	if err != nil {
		return nil, Meta{}, err
	}

	// String table.
	tb, ok := cols[blkStrings]
	if !ok {
		return nil, Meta{}, fmt.Errorf("%w: missing string table", ErrCorrupt)
	}
	count, n := binary.Uvarint(tb)
	if n <= 0 || count > uint64(len(tb)) {
		return nil, Meta{}, fmt.Errorf("%w: bad string table count", ErrCorrupt)
	}
	tb = tb[n:]
	syms := make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		ln, n := binary.Uvarint(tb)
		if n <= 0 || ln > uint64(len(tb)-n) {
			return nil, Meta{}, fmt.Errorf("%w: bad string table entry %d", ErrCorrupt, i)
		}
		syms = append(syms, string(tb[n:n+int(ln)]))
		tb = tb[n+int(ln):]
	}

	symCols := make([][]byte, len(symbolBlocks))
	for ci, id := range symbolBlocks {
		b, err := need(byte(id), 4)
		if err != nil {
			return nil, Meta{}, err
		}
		symCols[ci] = b
	}
	sym := func(ci, row int) (string, error) {
		id := binary.LittleEndian.Uint32(symCols[ci][4*row:])
		if uint64(id) >= uint64(len(syms)) {
			return "", fmt.Errorf("%w: symbol %d of %d in block %d", ErrCorrupt, id, len(syms), symbolBlocks[ci])
		}
		return syms[id], nil
	}

	tickets := make([]fot.Ticket, rows)
	for i := 0; i < rows; i++ {
		t := &tickets[i]
		t.Time = nsTime(int64(binary.LittleEndian.Uint64(times[8*i:])))
		t.ID = binary.LittleEndian.Uint64(ids[8*i:])
		t.HostID = binary.LittleEndian.Uint64(hosts[8*i:])
		t.Device = fot.Component(devices[i])
		t.Category = fot.Category(categories[i])
		t.Action = fot.Action(actions[i])
		t.Position = int(int32(binary.LittleEndian.Uint32(positions[4*i:])))
		t.OpTime = nsTime(int64(binary.LittleEndian.Uint64(opTimes[8*i:])))
		t.DeployTime = nsTime(int64(binary.LittleEndian.Uint64(deployTimes[8*i:])))
		var err error
		if t.Hostname, err = sym(0, i); err != nil {
			return nil, Meta{}, err
		}
		if t.IDC, err = sym(1, i); err != nil {
			return nil, Meta{}, err
		}
		if t.Rack, err = sym(2, i); err != nil {
			return nil, Meta{}, err
		}
		if t.Slot, err = sym(3, i); err != nil {
			return nil, Meta{}, err
		}
		if t.Type, err = sym(4, i); err != nil {
			return nil, Meta{}, err
		}
		if t.Detail, err = sym(5, i); err != nil {
			return nil, Meta{}, err
		}
		if t.Operator, err = sym(6, i); err != nil {
			return nil, Meta{}, err
		}
		if t.ProductLine, err = sym(7, i); err != nil {
			return nil, Meta{}, err
		}
		if t.Model, err = sym(8, i); err != nil {
			return nil, Meta{}, err
		}
	}
	return tickets, meta, nil
}

// Read loads and fully validates a segment file.
func Read(path string) ([]fot.Ticket, Meta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, Meta{}, fmt.Errorf("segment: read %s: %w", path, err)
	}
	ts, meta, err := Decode(data)
	if err != nil {
		return nil, Meta{}, fmt.Errorf("segment %s: %w", path, err)
	}
	return ts, meta, nil
}

// ReadMeta validates just the header and CRC'd footer of the segment at
// path and returns its Meta — the cheap startup check that lets an
// archive trust a sidecar without replaying the segment.
func ReadMeta(path string) (Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return Meta{}, fmt.Errorf("segment: open %s: %w", path, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return Meta{}, fmt.Errorf("segment: stat %s: %w", path, err)
	}
	if st.Size() < int64(len(magic)+footerSize) {
		return Meta{}, fmt.Errorf("%w: %s is %d bytes", ErrTruncated, path, st.Size())
	}
	head := make([]byte, len(magic))
	if _, err := f.ReadAt(head, 0); err != nil {
		return Meta{}, fmt.Errorf("segment: read header %s: %w", path, err)
	}
	if string(head) != magic {
		return Meta{}, fmt.Errorf("%w: %s bad magic", ErrCorrupt, path)
	}
	foot := make([]byte, footerSize)
	if _, err := f.ReadAt(foot, st.Size()-footerSize); err != nil {
		return Meta{}, fmt.Errorf("segment: read footer %s: %w", path, err)
	}
	if binary.LittleEndian.Uint32(foot[28:]) != trailerMagic {
		return Meta{}, fmt.Errorf("%w: %s bad trailer magic", ErrCorrupt, path)
	}
	if crc32.ChecksumIEEE(foot[:24]) != binary.LittleEndian.Uint32(foot[24:28]) {
		return Meta{}, fmt.Errorf("%w: %s footer CRC mismatch", ErrCorrupt, path)
	}
	return Meta{
		Rows:    int(binary.LittleEndian.Uint32(foot[0:4])),
		MinTime: nsTime(int64(binary.LittleEndian.Uint64(foot[8:16]))),
		MaxTime: nsTime(int64(binary.LittleEndian.Uint64(foot[16:24]))),
	}, nil
}
