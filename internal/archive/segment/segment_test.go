package segment

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"dcfail/internal/fot"
)

// crcFix recomputes a footer's CRC after a test mutates its fields.
func crcFix(foot []byte) {
	binary.LittleEndian.PutUint32(foot[24:], crc32.ChecksumIEEE(foot[:24]))
}

func testTickets(n int) []fot.Ticket {
	base := time.Date(2017, 3, 4, 5, 6, 7, 890123456, time.UTC)
	out := make([]fot.Ticket, n)
	for i := range out {
		out[i] = fot.Ticket{
			ID:          uint64(i + 1),
			HostID:      uint64(100 + i%13),
			Hostname:    "host-" + string(rune('a'+i%3)),
			IDC:         "idc-1",
			Rack:        "r9",
			Position:    i % 40,
			Device:      fot.Component(1 + i%11),
			Slot:        "s1",
			Type:        "MediumError",
			Time:        base.Add(time.Duration(i) * 97 * time.Second),
			Detail:      "detail text repeated across many tickets",
			Category:    fot.Category(1 + i%3),
			Action:      fot.Action(i % 5),
			Operator:    "op",
			OpTime:      base.Add(time.Duration(i)*97*time.Second + time.Hour),
			ProductLine: "web",
			DeployTime:  base.AddDate(-1, 0, 0),
			Model:       "M1",
		}
		if i%7 == 0 { // unset optional fields must round trip
			out[i].OpTime = time.Time{}
			out[i].DeployTime = time.Time{}
			out[i].Operator = ""
			out[i].Slot = ""
		}
	}
	return out
}

func TestWriteReadRoundTrip(t *testing.T) {
	want := testTickets(500)
	path := filepath.Join(t.TempDir(), "seg-000001.fotseg")
	wmeta, err := Write(path, want)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, rmeta, err := Read(path)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch")
	}
	if rmeta.Rows != 500 || !rmeta.MinTime.Equal(want[0].Time) || !rmeta.MaxTime.Equal(want[499].Time) {
		t.Fatalf("meta mismatch: %+v", rmeta)
	}
	if !reflect.DeepEqual(wmeta, rmeta) {
		t.Fatalf("write/read meta disagree: %+v vs %+v", wmeta, rmeta)
	}
	mmeta, err := ReadMeta(path)
	if err != nil {
		t.Fatalf("ReadMeta: %v", err)
	}
	if !reflect.DeepEqual(mmeta, rmeta) {
		t.Fatalf("ReadMeta disagrees: %+v vs %+v", mmeta, rmeta)
	}
}

func TestEmptySegment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg-000001.fotseg")
	if _, err := Write(path, nil); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, meta, err := Read(path)
	if err != nil || len(got) != 0 || meta.Rows != 0 {
		t.Fatalf("empty read: n=%d meta=%+v err=%v", len(got), meta, err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	data, _, err := Encode(testTickets(50))
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut < len(magic)+footerSize; cut++ {
		if _, _, err := Decode(data[:cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut %d: want ErrTruncated, got %v", cut, err)
		}
	}
	// Chopping whole-file prefixes of the body corrupts either the footer
	// position or a block; every cut must be a typed error.
	for cut := len(magic) + footerSize; cut < len(data); cut += 97 {
		_, _, err := Decode(data[:cut])
		if err == nil {
			t.Fatalf("cut %d: corrupt file decoded cleanly", cut)
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut %d: untyped error %v", cut, err)
		}
	}

	flip := func(i int) []byte {
		cp := append([]byte(nil), data...)
		cp[i] ^= 0xff
		return cp
	}
	if _, _, err := Decode(flip(0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: %v", err)
	}
	if _, _, err := Decode(flip(len(magic) + 20)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad block byte: %v", err)
	}
	if _, _, err := Decode(flip(len(data) - 2)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad trailer: %v", err)
	}
	if _, _, err := Decode(flip(len(data) - footerSize + 1)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad footer field: %v", err)
	}
}

func TestReadMetaRejectsCorruptFooter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg-000001.fotseg")
	if _, err := Write(path, testTickets(10)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-footerSize+2] ^= 0xff
	bad := filepath.Join(dir, "seg-000002.fotseg")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMeta(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if err := os.WriteFile(bad, raw[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMeta(bad); !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestUnknownBlockIDIsSkipped(t *testing.T) {
	// Forward compat: splice an extra CRC-valid block with an unused id
	// into the body and bump the footer block count; decode must ignore
	// it and still materialize every ticket.
	want := testTickets(20)
	data, _, err := Encode(want)
	if err != nil {
		t.Fatal(err)
	}
	body := data[len(magic) : len(data)-footerSize]
	extra := appendBlock(nil, 200, []byte("future column"))
	rebuilt := append([]byte(nil), data[:len(magic)]...)
	rebuilt = append(rebuilt, body...)
	rebuilt = append(rebuilt, extra...)
	foot := append([]byte(nil), data[len(data)-footerSize:]...)
	// block count += 1, then re-CRC the footer
	n := int(uint32(foot[4]) | uint32(foot[5])<<8 | uint32(foot[6])<<16 | uint32(foot[7])<<24)
	n++
	foot[4], foot[5], foot[6], foot[7] = byte(n), byte(n>>8), byte(n>>16), byte(n>>24)
	crcFix(foot)
	rebuilt = append(rebuilt, foot...)
	got, _, err := Decode(rebuilt)
	if err != nil {
		t.Fatalf("decode with unknown block: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tickets changed by unknown block")
	}
}
