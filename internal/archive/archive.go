// Package archive implements the FMS ticket archive: the paper's
// collector turns every closed FOT into an archived log entry (§VII-B).
// The archive is an append-only store of segment files with a sidecar
// time index per segment, so four years of tickets can be queried by
// time range without scanning everything.
//
// Two on-disk codecs exist. The default (CodecBinary) appends tickets
// to a CRC-framed binary log (.fotlog, internal/wire frames) and
// compacts it at rotation into an immutable columnar segment (.fotseg,
// internal/archive/segment) whose CRC-validated footer makes cold start
// "open + validate" instead of "reparse every line". CodecJSON keeps
// the original JSON-lines segments for interoperability. A directory
// may mix the two: readers dispatch on extension.
//
// Layout inside the archive directory (binary codec):
//
//	seg-000001.fotseg      immutable columnar segment (finalized)
//	seg-000001.meta.json   {"count":N,"min_time":...,"max_time":...}
//	seg-000002.fotlog      the open segment's append log (wire frames)
//
// and with CodecJSON:
//
//	seg-000001.jsonl       tickets, one JSON object per line
//	seg-000001.meta.json   sidecar index
//
// Crash recovery on Open: a leftover .fotlog without a valid .fotseg is
// re-finalized (its torn tail, if any, is discarded frame-exactly); a
// .fotlog next to a valid .fotseg is a finalization that crashed after
// the segment was durable, so the log is simply removed. Sidecars are a
// rebuildable cache — a missing or corrupt sidecar is regenerated from
// the segment, and for .fotseg segments the CRC'd footer is always
// validated before a sidecar is trusted.
package archive

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"dcfail/internal/archive/segment"
	"dcfail/internal/fot"
	"dcfail/internal/wire"
)

// Codec names for Options.Codec.
const (
	// CodecBinary writes wire-framed logs compacted into columnar
	// .fotseg segments (the default).
	CodecBinary = "binary"
	// CodecJSON writes the original JSON-lines segments.
	CodecJSON = "json"
)

// Segment file extensions.
const (
	extJSON = ".jsonl"
	extSeg  = ".fotseg"
	extLog  = ".fotlog"
)

// Options configures OpenWith.
type Options struct {
	// MaxPerSegment sets the rotation threshold; 0 means
	// DefaultSegmentSize.
	MaxPerSegment int
	// Codec selects the on-disk format for new segments (CodecBinary
	// when empty). Existing segments of either codec are always read.
	Codec string
}

// Archive is a segmented, append-only FOT store. It is safe for
// concurrent use.
type Archive struct {
	dir           string
	maxPerSegment int
	codec         string

	mu       sync.Mutex
	segments []segmentMeta
	current  *os.File
	writer   *bufio.Writer
	cur      segmentMeta
	curLog   string // open .fotlog name (binary codec)

	enc        *wire.Encoder // per-log symbol table (binary codec)
	frame      []byte        // reused frame scratch (binary codec)
	curTickets []fot.Ticket  // open segment contents (binary codec)

	recoveredTorn int64
}

// segmentMeta is one segment's sidecar index.
type segmentMeta struct {
	Name    string    `json:"name"`
	Count   int       `json:"count"`
	MinTime time.Time `json:"min_time"`
	MaxTime time.Time `json:"max_time"`
}

// DefaultSegmentSize is the rotation threshold used when Open gets 0.
const DefaultSegmentSize = 50000

// Open opens (creating if needed) an archive directory with the default
// binary codec. maxPerSegment sets the rotation threshold; 0 means
// DefaultSegmentSize.
func Open(dir string, maxPerSegment int) (*Archive, error) {
	return OpenWith(dir, Options{MaxPerSegment: maxPerSegment})
}

// OpenWith opens an archive with explicit options.
func OpenWith(dir string, opts Options) (*Archive, error) {
	max := opts.MaxPerSegment
	if max <= 0 {
		max = DefaultSegmentSize
	}
	codec := opts.Codec
	if codec == "" {
		codec = CodecBinary
	}
	if codec != CodecBinary && codec != CodecJSON {
		return nil, fmt.Errorf("archive: unknown codec %q", opts.Codec)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("archive: create dir: %w", err)
	}
	a := &Archive{dir: dir, maxPerSegment: max, codec: codec}
	if err := a.loadSegments(); err != nil {
		return nil, err
	}
	return a, nil
}

// TornBytes reports how many bytes of torn binary-log tail Open
// discarded while recovering unfinalized segments.
func (a *Archive) TornBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.recoveredTorn
}

// baseName strips a segment file's data extension.
func baseName(name string) string {
	for _, ext := range []string{extJSON, extSeg, extLog} {
		if strings.HasSuffix(name, ext) {
			return strings.TrimSuffix(name, ext)
		}
	}
	return name
}

func (a *Archive) loadSegments() error {
	entries, err := os.ReadDir(a.dir)
	if err != nil {
		return fmt.Errorf("archive: read dir: %w", err)
	}
	exts := make(map[string]map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "seg-") {
			continue
		}
		for _, ext := range []string{extJSON, extSeg, extLog} {
			if strings.HasSuffix(name, ext) {
				base := baseName(name)
				if exts[base] == nil {
					exts[base] = make(map[string]bool)
				}
				exts[base][ext] = true
			}
		}
	}
	bases := make([]string, 0, len(exts))
	for b := range exts {
		bases = append(bases, b)
	}
	sort.Strings(bases)
	for _, base := range bases {
		has := exts[base]
		var meta segmentMeta
		var err error
		switch {
		case has[extSeg]:
			if has[extLog] {
				// Finalization crashed. If the segment validates, it was
				// durable before the crash and the log is redundant;
				// otherwise the crash hit mid-Write and the log is the
				// source of truth.
				if _, verr := segment.ReadMeta(filepath.Join(a.dir, base+extSeg)); verr == nil {
					if rerr := os.Remove(filepath.Join(a.dir, base+extLog)); rerr != nil {
						return fmt.Errorf("archive: remove stale log: %w", rerr)
					}
				} else {
					meta, err = a.recoverLog(base)
					if err != nil {
						return err
					}
					a.segments = append(a.segments, meta)
					continue
				}
			}
			meta, err = a.loadOrRebuildMeta(base + extSeg)
		case has[extLog]:
			meta, err = a.recoverLog(base)
		default:
			meta, err = a.loadOrRebuildMeta(base + extJSON)
		}
		if err != nil {
			return err
		}
		a.segments = append(a.segments, meta)
	}
	return nil
}

// recoverLog finalizes a leftover append log: its complete frames are
// compacted into a .fotseg (any torn tail is discarded frame-exactly),
// the sidecar is written, and the log removed.
func (a *Archive) recoverLog(base string) (segmentMeta, error) {
	logPath := filepath.Join(a.dir, base+extLog)
	raw, err := os.ReadFile(logPath)
	if err != nil {
		return segmentMeta{}, fmt.Errorf("archive: read log %s: %w", logPath, err)
	}
	tickets, consumed, err := decodeLogFrames(raw)
	if err != nil {
		return segmentMeta{}, fmt.Errorf("archive: recover %s: %w", filepath.Base(logPath), err)
	}
	a.recoveredTorn += int64(len(raw) - consumed)
	name := base + extSeg
	smeta, err := segment.Write(filepath.Join(a.dir, name), tickets)
	if err != nil {
		return segmentMeta{}, err
	}
	meta := segmentMeta{Name: name, Count: smeta.Rows, MinTime: smeta.MinTime, MaxTime: smeta.MaxTime}
	if err := a.writeMeta(meta); err != nil {
		return segmentMeta{}, err
	}
	if err := os.Remove(logPath); err != nil {
		return segmentMeta{}, fmt.Errorf("archive: remove recovered log: %w", err)
	}
	return meta, nil
}

// decodeLogFrames decodes the complete KindTicket frames at the front
// of raw, returning the tickets and how many bytes they span. A torn
// tail (truncated final frame) is not an error — recovery discards it.
func decodeLogFrames(raw []byte) ([]fot.Ticket, int, error) {
	dec := wire.NewDecoder()
	var out []fot.Ticket
	rest := raw
	for len(rest) > 0 {
		kind, payload, next, err := wire.DecodeFrame(rest)
		if errors.Is(err, wire.ErrTruncated) {
			break
		}
		if err != nil {
			return nil, 0, err
		}
		if kind != wire.KindTicket {
			return nil, 0, fmt.Errorf("archive: unexpected frame kind %d in log", kind)
		}
		t, err := dec.DecodeTicket(payload)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, t)
		rest = next
	}
	return out, len(raw) - len(rest), nil
}

// loadOrRebuildMeta returns the sidecar index for a finalized segment,
// rebuilding it from the segment when missing or corrupt. For .fotseg
// segments the CRC'd footer is validated even when the sidecar looks
// fine — a sidecar must never vouch for bytes the segment cannot prove.
func (a *Archive) loadOrRebuildMeta(name string) (segmentMeta, error) {
	metaPath := filepath.Join(a.dir, metaName(name))
	binary := strings.HasSuffix(name, extSeg)
	raw, err := os.ReadFile(metaPath)
	if err == nil {
		var meta segmentMeta
		if jerr := json.Unmarshal(raw, &meta); jerr == nil && meta.Name == name {
			if !binary {
				return meta, nil
			}
			smeta, verr := segment.ReadMeta(filepath.Join(a.dir, name))
			if verr != nil {
				return segmentMeta{}, fmt.Errorf("archive: segment %s fails validation: %w", name, verr)
			}
			if smeta.Rows == meta.Count {
				return meta, nil
			}
			// Sidecar disagrees with the footer: the footer is CRC'd and
			// authoritative, so rewrite the sidecar from it.
			meta = segmentMeta{Name: name, Count: smeta.Rows, MinTime: smeta.MinTime, MaxTime: smeta.MaxTime}
			if err := a.writeMeta(meta); err != nil {
				return segmentMeta{}, err
			}
			return meta, nil
		}
		// Corrupt sidecar: fall through and rebuild.
	} else if !os.IsNotExist(err) {
		return segmentMeta{}, fmt.Errorf("archive: read meta %s: %w", metaPath, err)
	}
	var meta segmentMeta
	if binary {
		// Full read validates every block CRC, not just the footer.
		_, smeta, rerr := segment.Read(filepath.Join(a.dir, name))
		if rerr != nil {
			return segmentMeta{}, rerr
		}
		meta = segmentMeta{Name: name, Count: smeta.Rows, MinTime: smeta.MinTime, MaxTime: smeta.MaxTime}
	} else {
		tr, rerr := a.readSegment(name, time.Time{}, time.Time{})
		if rerr != nil {
			return segmentMeta{}, rerr
		}
		meta = segmentMeta{Name: name, Count: tr.Len()}
		if lo, hi, ok := tr.Span(); ok {
			meta.MinTime, meta.MaxTime = lo, hi
		}
	}
	if err := a.writeMeta(meta); err != nil {
		return segmentMeta{}, err
	}
	return meta, nil
}

func metaName(segName string) string {
	return baseName(segName) + ".meta.json"
}

func (a *Archive) writeMeta(meta segmentMeta) error {
	raw, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("archive: encode meta: %w", err)
	}
	path := filepath.Join(a.dir, metaName(meta.Name))
	//lint:ignore fsyncgap meta sidecars are a rebuildable cache: a torn/missing sidecar is regenerated from the fsynced segment on open
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("archive: write meta: %w", err)
	}
	return nil
}

// Append stores one ticket. Rotation happens automatically.
func (a *Archive) Append(t fot.Ticket) error {
	if err := t.Validate(); err != nil {
		return fmt.Errorf("archive: refusing invalid ticket: %w", err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.current == nil || a.cur.Count >= a.maxPerSegment {
		if err := a.rotateLocked(); err != nil {
			return err
		}
	}
	if a.codec == CodecBinary {
		a.frame = a.enc.AppendTicket(a.frame[:0], &t)
		if _, err := a.writer.Write(a.frame); err != nil {
			return fmt.Errorf("archive: append: %w", err)
		}
		a.curTickets = append(a.curTickets, t)
	} else {
		line, err := fot.MarshalJSONLine(t)
		if err != nil {
			return err
		}
		if _, err := a.writer.Write(line); err != nil {
			return fmt.Errorf("archive: append: %w", err)
		}
		if err := a.writer.WriteByte('\n'); err != nil {
			return fmt.Errorf("archive: append: %w", err)
		}
	}
	if a.cur.Count == 0 || t.Time.Before(a.cur.MinTime) {
		a.cur.MinTime = t.Time
	}
	if a.cur.Count == 0 || t.Time.After(a.cur.MaxTime) {
		a.cur.MaxTime = t.Time
	}
	a.cur.Count++
	return nil
}

// AppendTrace stores every ticket of a trace.
func (a *Archive) AppendTrace(tr *fot.Trace) error {
	for _, t := range tr.Tickets {
		if err := a.Append(t); err != nil {
			return err
		}
	}
	return nil
}

// rotateLocked finalizes the current segment and opens the next one.
func (a *Archive) rotateLocked() error {
	if err := a.closeCurrentLocked(); err != nil {
		return err
	}
	seq := len(a.segments) + 1
	var fileName string
	if a.codec == CodecBinary {
		fileName = fmt.Sprintf("seg-%06d%s", seq, extLog)
		a.cur = segmentMeta{Name: fmt.Sprintf("seg-%06d%s", seq, extSeg)}
		a.curLog = fileName
		a.enc = wire.NewEncoder() // symbol table is per-log
		a.curTickets = a.curTickets[:0]
	} else {
		fileName = fmt.Sprintf("seg-%06d%s", seq, extJSON)
		a.cur = segmentMeta{Name: fileName}
	}
	f, err := os.OpenFile(filepath.Join(a.dir, fileName), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("archive: create segment: %w", err)
	}
	a.current = f
	a.writer = bufio.NewWriter(f)
	return nil
}

func (a *Archive) closeCurrentLocked() error {
	if a.current == nil {
		return nil
	}
	if err := a.writer.Flush(); err != nil {
		return fmt.Errorf("archive: flush: %w", err)
	}
	// fsync before the sidecar is written: a sidecar must never claim
	// tickets the segment could lose in a crash.
	if err := a.current.Sync(); err != nil {
		return fmt.Errorf("archive: fsync segment: %w", err)
	}
	if err := a.current.Close(); err != nil {
		return fmt.Errorf("archive: close segment: %w", err)
	}
	if a.codec == CodecBinary {
		// Compact the durable log into the immutable columnar segment
		// (segment.Write fsyncs before returning), then write the sidecar
		// and drop the log. A crash between any of these steps is healed
		// by Open's recovery: the log is replayed or removed depending on
		// whether the .fotseg validates.
		if _, err := segment.Write(filepath.Join(a.dir, a.cur.Name), a.curTickets); err != nil {
			return err
		}
		a.segments = append(a.segments, a.cur)
		if err := a.writeMeta(a.cur); err != nil {
			return err
		}
		if err := os.Remove(filepath.Join(a.dir, a.curLog)); err != nil {
			return fmt.Errorf("archive: remove compacted log: %w", err)
		}
		a.curTickets = a.curTickets[:0]
		a.curLog = ""
		a.enc = nil
	} else {
		a.segments = append(a.segments, a.cur)
		if err := a.writeMeta(a.cur); err != nil {
			return err
		}
	}
	a.current = nil
	a.writer = nil
	return nil
}

// Close flushes and finalizes the open segment.
func (a *Archive) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.closeCurrentLocked()
}

// Count returns the total archived tickets (including unflushed ones).
func (a *Archive) Count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := a.cur.Count
	for _, s := range a.segments {
		n += s.Count
	}
	return n
}

// Segments returns the finalized segment names in order.
func (a *Archive) Segments() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	names := make([]string, 0, len(a.segments))
	for _, s := range a.segments {
		names = append(names, s.Name)
	}
	return names
}

// Query returns all archived tickets with from <= error_time < to,
// skipping segments whose index proves they cannot match. Zero bounds
// mean unbounded on that side. The open segment is flushed first so
// queries (and followers tailing the directory) see every appended
// ticket.
func (a *Archive) Query(from, to time.Time) (*fot.Trace, error) {
	a.mu.Lock()
	if a.writer != nil {
		if err := a.writer.Flush(); err != nil {
			a.mu.Unlock()
			return nil, fmt.Errorf("archive: flush for query: %w", err)
		}
	}
	segs := make([]segmentMeta, len(a.segments))
	copy(segs, a.segments)
	var openTickets []fot.Ticket
	if a.current != nil {
		if a.codec == CodecBinary {
			// The open binary segment is served from memory; the log on
			// disk exists for crash recovery and followers.
			if overlaps(a.cur, from, to) {
				openTickets = append(openTickets, a.curTickets...)
			}
		} else {
			segs = append(segs, a.cur)
		}
	}
	a.mu.Unlock()

	var out []fot.Ticket
	for _, seg := range segs {
		if seg.Count == 0 || !overlaps(seg, from, to) {
			continue
		}
		tr, err := a.readSegment(seg.Name, from, to)
		if err != nil {
			return nil, err
		}
		out = append(out, tr.Tickets...)
	}
	for _, t := range openTickets {
		if inRange(t.Time, from, to) {
			out = append(out, t)
		}
	}
	trace := fot.NewTrace(out)
	trace.SortByTime()
	return trace, nil
}

func overlaps(seg segmentMeta, from, to time.Time) bool {
	if !from.IsZero() && seg.MaxTime.Before(from) {
		return false
	}
	if !to.IsZero() && !seg.MinTime.Before(to) {
		return false
	}
	return true
}

func inRange(t, from, to time.Time) bool {
	if !from.IsZero() && t.Before(from) {
		return false
	}
	if !to.IsZero() && !t.Before(to) {
		return false
	}
	return true
}

// readSegment loads one finalized segment, filtering by time bounds
// (zero = open), dispatching on the on-disk codec.
func (a *Archive) readSegment(name string, from, to time.Time) (*fot.Trace, error) {
	if strings.HasSuffix(name, extSeg) {
		tickets, _, err := segment.Read(filepath.Join(a.dir, name))
		if err != nil {
			return nil, err
		}
		tr := fot.NewTrace(tickets)
		if from.IsZero() && to.IsZero() {
			return tr, nil
		}
		return tr.Filter(func(t fot.Ticket) bool { return inRange(t.Time, from, to) }), nil
	}
	f, err := os.Open(filepath.Join(a.dir, name))
	if err != nil {
		return nil, fmt.Errorf("archive: open segment: %w", err)
	}
	defer f.Close()
	tr, err := fot.ReadJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("archive: segment %s: %w", name, err)
	}
	if from.IsZero() && to.IsZero() {
		return tr, nil
	}
	return tr.Filter(func(t fot.Ticket) bool { return inRange(t.Time, from, to) }), nil
}
