// Package archive implements the FMS ticket archive: the paper's
// collector turns every closed FOT into an archived log entry (§VII-B).
// The archive is an append-only store of JSON-lines segment files with a
// sidecar time index per segment, so four years of tickets can be queried
// by time range without scanning everything.
//
// Layout inside the archive directory:
//
//	seg-000001.jsonl       tickets, one JSON object per line
//	seg-000001.meta.json   {"count":N,"min_time":...,"max_time":...}
//	seg-000002.jsonl       ...
//
// The newest segment may lack a sidecar (crash before rotate); Open
// rebuilds it by scanning that segment once.
package archive

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"dcfail/internal/fot"
)

// Archive is a segmented, append-only FOT store. It is safe for
// concurrent use.
type Archive struct {
	dir           string
	maxPerSegment int

	mu       sync.Mutex
	segments []segmentMeta
	current  *os.File
	writer   *bufio.Writer
	cur      segmentMeta
}

// segmentMeta is one segment's sidecar index.
type segmentMeta struct {
	Name    string    `json:"name"`
	Count   int       `json:"count"`
	MinTime time.Time `json:"min_time"`
	MaxTime time.Time `json:"max_time"`
}

// DefaultSegmentSize is the rotation threshold used when Open gets 0.
const DefaultSegmentSize = 50000

// Open opens (creating if needed) an archive directory. maxPerSegment
// sets the rotation threshold; 0 means DefaultSegmentSize.
func Open(dir string, maxPerSegment int) (*Archive, error) {
	if maxPerSegment <= 0 {
		maxPerSegment = DefaultSegmentSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("archive: create dir: %w", err)
	}
	a := &Archive{dir: dir, maxPerSegment: maxPerSegment}
	if err := a.loadSegments(); err != nil {
		return nil, err
	}
	return a, nil
}

func (a *Archive) loadSegments() error {
	entries, err := os.ReadDir(a.dir)
	if err != nil {
		return fmt.Errorf("archive: read dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "seg-") && strings.HasSuffix(e.Name(), ".jsonl") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		meta, err := a.loadOrRebuildMeta(name)
		if err != nil {
			return err
		}
		a.segments = append(a.segments, meta)
	}
	return nil
}

func (a *Archive) loadOrRebuildMeta(name string) (segmentMeta, error) {
	metaPath := filepath.Join(a.dir, metaName(name))
	raw, err := os.ReadFile(metaPath)
	if err == nil {
		var meta segmentMeta
		if jerr := json.Unmarshal(raw, &meta); jerr == nil && meta.Name == name {
			return meta, nil
		}
		// Corrupt sidecar: fall through and rebuild.
	} else if !os.IsNotExist(err) {
		return segmentMeta{}, fmt.Errorf("archive: read meta %s: %w", metaPath, err)
	}
	tr, err := a.readSegment(name, time.Time{}, time.Time{})
	if err != nil {
		return segmentMeta{}, err
	}
	meta := segmentMeta{Name: name, Count: tr.Len()}
	if lo, hi, ok := tr.Span(); ok {
		meta.MinTime, meta.MaxTime = lo, hi
	}
	if err := a.writeMeta(meta); err != nil {
		return segmentMeta{}, err
	}
	return meta, nil
}

func metaName(segName string) string {
	return strings.TrimSuffix(segName, ".jsonl") + ".meta.json"
}

func (a *Archive) writeMeta(meta segmentMeta) error {
	raw, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("archive: encode meta: %w", err)
	}
	path := filepath.Join(a.dir, metaName(meta.Name))
	//lint:ignore fsyncgap meta sidecars are a rebuildable cache: a torn/missing sidecar is regenerated from the fsynced segment on open
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("archive: write meta: %w", err)
	}
	return nil
}

// Append stores one ticket. Rotation happens automatically.
func (a *Archive) Append(t fot.Ticket) error {
	if err := t.Validate(); err != nil {
		return fmt.Errorf("archive: refusing invalid ticket: %w", err)
	}
	line, err := fot.MarshalJSONLine(t)
	if err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.current == nil || a.cur.Count >= a.maxPerSegment {
		if err := a.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := a.writer.Write(line); err != nil {
		return fmt.Errorf("archive: append: %w", err)
	}
	if err := a.writer.WriteByte('\n'); err != nil {
		return fmt.Errorf("archive: append: %w", err)
	}
	if a.cur.Count == 0 || t.Time.Before(a.cur.MinTime) {
		a.cur.MinTime = t.Time
	}
	if a.cur.Count == 0 || t.Time.After(a.cur.MaxTime) {
		a.cur.MaxTime = t.Time
	}
	a.cur.Count++
	return nil
}

// AppendTrace stores every ticket of a trace.
func (a *Archive) AppendTrace(tr *fot.Trace) error {
	for _, t := range tr.Tickets {
		if err := a.Append(t); err != nil {
			return err
		}
	}
	return nil
}

// rotateLocked finalizes the current segment and opens the next one.
func (a *Archive) rotateLocked() error {
	if err := a.closeCurrentLocked(); err != nil {
		return err
	}
	seq := len(a.segments) + 1
	name := fmt.Sprintf("seg-%06d.jsonl", seq)
	f, err := os.OpenFile(filepath.Join(a.dir, name), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("archive: create segment: %w", err)
	}
	a.current = f
	a.writer = bufio.NewWriter(f)
	a.cur = segmentMeta{Name: name}
	return nil
}

func (a *Archive) closeCurrentLocked() error {
	if a.current == nil {
		return nil
	}
	if err := a.writer.Flush(); err != nil {
		return fmt.Errorf("archive: flush: %w", err)
	}
	// fsync before the sidecar is written: a sidecar must never claim
	// tickets the segment could lose in a crash.
	if err := a.current.Sync(); err != nil {
		return fmt.Errorf("archive: fsync segment: %w", err)
	}
	if err := a.current.Close(); err != nil {
		return fmt.Errorf("archive: close segment: %w", err)
	}
	a.segments = append(a.segments, a.cur)
	if err := a.writeMeta(a.cur); err != nil {
		return err
	}
	a.current = nil
	a.writer = nil
	return nil
}

// Close flushes and finalizes the open segment.
func (a *Archive) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.closeCurrentLocked()
}

// Count returns the total archived tickets (including unflushed ones).
func (a *Archive) Count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := a.cur.Count
	for _, s := range a.segments {
		n += s.Count
	}
	return n
}

// Segments returns the finalized segment names in order.
func (a *Archive) Segments() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	names := make([]string, 0, len(a.segments))
	for _, s := range a.segments {
		names = append(names, s.Name)
	}
	return names
}

// Query returns all archived tickets with from <= error_time < to,
// skipping segments whose index proves they cannot match. Zero bounds
// mean unbounded on that side. The open segment is flushed first so
// queries see every appended ticket.
func (a *Archive) Query(from, to time.Time) (*fot.Trace, error) {
	a.mu.Lock()
	if a.writer != nil {
		if err := a.writer.Flush(); err != nil {
			a.mu.Unlock()
			return nil, fmt.Errorf("archive: flush for query: %w", err)
		}
	}
	segs := make([]segmentMeta, len(a.segments))
	copy(segs, a.segments)
	if a.current != nil {
		segs = append(segs, a.cur)
	}
	a.mu.Unlock()

	var out []fot.Ticket
	for _, seg := range segs {
		if seg.Count == 0 || !overlaps(seg, from, to) {
			continue
		}
		tr, err := a.readSegment(seg.Name, from, to)
		if err != nil {
			return nil, err
		}
		out = append(out, tr.Tickets...)
	}
	trace := fot.NewTrace(out)
	trace.SortByTime()
	return trace, nil
}

func overlaps(seg segmentMeta, from, to time.Time) bool {
	if !from.IsZero() && seg.MaxTime.Before(from) {
		return false
	}
	if !to.IsZero() && !seg.MinTime.Before(to) {
		return false
	}
	return true
}

// readSegment loads one segment, filtering by time bounds (zero = open).
func (a *Archive) readSegment(name string, from, to time.Time) (*fot.Trace, error) {
	f, err := os.Open(filepath.Join(a.dir, name))
	if err != nil {
		return nil, fmt.Errorf("archive: open segment: %w", err)
	}
	defer f.Close()
	tr, err := fot.ReadJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("archive: segment %s: %w", name, err)
	}
	if from.IsZero() && to.IsZero() {
		return tr, nil
	}
	return tr.Filter(func(t fot.Ticket) bool {
		if !from.IsZero() && t.Time.Before(from) {
			return false
		}
		if !to.IsZero() && !t.Time.Before(to) {
			return false
		}
		return true
	}), nil
}
