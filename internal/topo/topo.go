// Package topo models the physical and organizational structure of the
// simulated fleet: datacenters with racks and rack positions, servers of
// several hardware generations, and the product lines that own them.
//
// The model captures exactly the structure the paper's analyses depend on:
// rack position and per-position occupancy (Fig. 8 / Hypothesis 5),
// datacenter build year and cooling design (§IV), server deploy time and
// warranty (Fig. 6, Table I), per-server component inventory (footnote 2:
// HDD/SSD/CPU counts are known per server), and product-line ownership
// with fault-tolerance tiers (§VI-C, Fig. 11).
package topo

import (
	"fmt"
	"time"

	"dcfail/internal/fot"
)

// Server is one physical host.
type Server struct {
	HostID   uint64
	Hostname string
	IDC      string // datacenter id
	Rack     string
	Position int // slot within the rack, 1-based

	Model       string // hardware generation, e.g. "gen3"
	ProductLine string
	DeployTime  time.Time
	// WarrantyYears is the vendor warranty; failures after expiry land in
	// D_error (paper Table I: operators do not repair out-of-warranty
	// hardware).
	WarrantyYears int

	// Inventory is the number of components of each class installed.
	Inventory map[fot.Component]int

	// Frailty is a per-server hazard multiplier; a heavy-tailed frailty
	// produces the extreme per-server failure-count skew of Fig. 7.
	Frailty float64
}

// InWarranty reports whether the server is still under warranty at ts.
func (s *Server) InWarranty(ts time.Time) bool {
	return ts.Before(s.DeployTime.AddDate(s.WarrantyYears, 0, 0))
}

// Age returns the server's time in service at ts (zero if before deploy).
func (s *Server) Age(ts time.Time) time.Duration {
	if ts.Before(s.DeployTime) {
		return 0
	}
	return ts.Sub(s.DeployTime)
}

// Datacenter is one facility.
type Datacenter struct {
	ID        string
	BuiltYear int
	Racks     int
	// PositionsPerRack is the number of rack slots (classic 40U-ish).
	PositionsPerRack int
	// Cooling maps rack position (1-based index 0 unused) to a thermal
	// hazard multiplier; 1.0 everywhere means a perfectly even facility.
	Cooling []float64
}

// CoolingAt returns the thermal hazard multiplier at a rack position.
func (d *Datacenter) CoolingAt(pos int) float64 {
	if pos < 1 || pos >= len(d.Cooling) {
		return 1
	}
	return d.Cooling[pos]
}

// FaultTolerance is a product line's software fault-tolerance tier.
// Higher tiers tolerate hardware failures better, which — per §VI —
// makes their operators respond more slowly.
type FaultTolerance int

const (
	// FTLow marks lines with little redundancy (e.g. SSD-backed
	// user-facing services with strict operation guidelines).
	FTLow FaultTolerance = iota + 1
	// FTMedium marks typical online services.
	FTMedium
	// FTHigh marks large batch-processing lines (Hadoop-style) that
	// restore redundancy automatically.
	FTHigh
)

func (f FaultTolerance) String() string {
	switch f {
	case FTLow:
		return "low"
	case FTMedium:
		return "medium"
	case FTHigh:
		return "high"
	default:
		return fmt.Sprintf("FaultTolerance(%d)", int(f))
	}
}

// ProductLine is one service owning a partition of the fleet.
type ProductLine struct {
	Name string
	// Tolerance drives the operator response-time model (§VI-C).
	Tolerance FaultTolerance
	// Workload names the diurnal utilization profile ("batch", "online",
	// "mixed") used by the detection-gating model.
	Workload string
	// UsesSSD marks lines whose servers carry SSDs and flash cards.
	UsesSSD bool
	// Weight is the relative share of the fleet the line owns.
	Weight float64
}

// Fleet is the full simulated estate.
type Fleet struct {
	Datacenters []Datacenter
	Lines       []ProductLine
	Servers     []Server

	byIDC  map[string][]*Server
	byLine map[string][]*Server
}

// NumServers returns the fleet size.
func (f *Fleet) NumServers() int { return len(f.Servers) }

// ServersByIDC returns the servers in one datacenter (shared slice; do not
// modify).
func (f *Fleet) ServersByIDC(idc string) []*Server {
	f.ensureIndexes()
	return f.byIDC[idc]
}

// ServersByLine returns the servers of one product line (shared slice; do
// not modify).
func (f *Fleet) ServersByLine(line string) []*Server {
	f.ensureIndexes()
	return f.byLine[line]
}

// PositionOccupancy returns, for a datacenter, the number of servers at
// each rack position (index 0 unused). Empty top/bottom slots show up as
// zero — Hypothesis 5's analysis must normalize by this.
func (f *Fleet) PositionOccupancy(idc string) []int {
	var dc *Datacenter
	for i := range f.Datacenters {
		if f.Datacenters[i].ID == idc {
			dc = &f.Datacenters[i]
			break
		}
	}
	if dc == nil {
		return nil
	}
	occ := make([]int, dc.PositionsPerRack+1)
	for _, s := range f.ServersByIDC(idc) {
		if s.Position >= 1 && s.Position <= dc.PositionsPerRack {
			occ[s.Position]++
		}
	}
	return occ
}

// ComponentCount returns the total number of installed components of class
// c across the fleet, used to normalize per-component failure rates
// (paper footnote 2).
func (f *Fleet) ComponentCount(c fot.Component) int {
	total := 0
	for i := range f.Servers {
		total += f.Servers[i].Inventory[c]
	}
	return total
}

func (f *Fleet) ensureIndexes() {
	if f.byIDC != nil {
		return
	}
	f.byIDC = make(map[string][]*Server, len(f.Datacenters))
	f.byLine = make(map[string][]*Server, len(f.Lines))
	for i := range f.Servers {
		s := &f.Servers[i]
		f.byIDC[s.IDC] = append(f.byIDC[s.IDC], s)
		f.byLine[s.ProductLine] = append(f.byLine[s.ProductLine], s)
	}
}

// Validate checks structural invariants of the fleet.
func (f *Fleet) Validate() error {
	if len(f.Servers) == 0 {
		return fmt.Errorf("topo: fleet has no servers")
	}
	dcs := make(map[string]*Datacenter, len(f.Datacenters))
	for i := range f.Datacenters {
		dc := &f.Datacenters[i]
		if dc.Racks < 1 || dc.PositionsPerRack < 1 {
			return fmt.Errorf("topo: datacenter %s has invalid shape", dc.ID)
		}
		if len(dc.Cooling) != dc.PositionsPerRack+1 {
			return fmt.Errorf("topo: datacenter %s cooling profile has %d entries, want %d",
				dc.ID, len(dc.Cooling), dc.PositionsPerRack+1)
		}
		dcs[dc.ID] = dc
	}
	lines := make(map[string]bool, len(f.Lines))
	for _, pl := range f.Lines {
		lines[pl.Name] = true
	}
	seen := make(map[uint64]bool, len(f.Servers))
	for i := range f.Servers {
		s := &f.Servers[i]
		if seen[s.HostID] {
			return fmt.Errorf("topo: duplicate host id %d", s.HostID)
		}
		seen[s.HostID] = true
		dc, ok := dcs[s.IDC]
		if !ok {
			return fmt.Errorf("topo: server %d references unknown idc %s", s.HostID, s.IDC)
		}
		if s.Position < 1 || s.Position > dc.PositionsPerRack {
			return fmt.Errorf("topo: server %d at invalid position %d", s.HostID, s.Position)
		}
		if !lines[s.ProductLine] {
			return fmt.Errorf("topo: server %d references unknown product line %s", s.HostID, s.ProductLine)
		}
		if s.DeployTime.IsZero() {
			return fmt.Errorf("topo: server %d has zero deploy time", s.HostID)
		}
		if s.Frailty <= 0 {
			return fmt.Errorf("topo: server %d has non-positive frailty", s.HostID)
		}
		if len(s.Inventory) == 0 {
			return fmt.Errorf("topo: server %d has empty inventory", s.HostID)
		}
	}
	return nil
}
