package topo

import (
	"math/rand"
	"testing"
	"time"

	"dcfail/internal/fot"
)

func smallSpec() Spec {
	sp := DefaultSpec()
	sp.Datacenters = 4
	sp.RacksPerDC = 5
	sp.PositionsPerRack = 20
	sp.ProductLines = 8
	sp.PreModernDCs = 2
	return sp
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(smallSpec(), 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(smallSpec(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumServers() != b.NumServers() {
		t.Fatalf("sizes differ: %d vs %d", a.NumServers(), b.NumServers())
	}
	for i := range a.Servers {
		if a.Servers[i].Hostname != b.Servers[i].Hostname ||
			a.Servers[i].Frailty != b.Servers[i].Frailty ||
			!a.Servers[i].DeployTime.Equal(b.Servers[i].DeployTime) {
			t.Fatalf("server %d differs between equal-seed builds", i)
		}
	}
	c, err := Build(smallSpec(), 43)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumServers() == a.NumServers() && c.Servers[0].Frailty == a.Servers[0].Frailty {
		t.Error("different seeds produced identical fleets")
	}
}

func TestBuildValidates(t *testing.T) {
	f, err := Build(smallSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.NumServers() < 100 {
		t.Errorf("suspiciously small fleet: %d", f.NumServers())
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.Datacenters = 0 },
		func(s *Spec) { s.RacksPerDC = 0 },
		func(s *Spec) { s.PositionsPerRack = 2 },
		func(s *Spec) { s.Occupancy = 0 },
		func(s *Spec) { s.Occupancy = 1.5 },
		func(s *Spec) { s.ProductLines = 0 },
		func(s *Spec) { s.StudyEnd = s.StudyStart },
		func(s *Spec) { s.FrailtyAlpha = 0 },
		func(s *Spec) { s.PreModernDCs = -1 },
		func(s *Spec) { s.PreModernDCs = s.Datacenters + 1 },
	}
	for i, m := range bad {
		sp := DefaultSpec()
		m(&sp)
		if _, err := Build(sp, 1); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestIndexesAndOccupancy(t *testing.T) {
	f, err := Build(smallSpec(), 7)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, dc := range f.Datacenters {
		servers := f.ServersByIDC(dc.ID)
		total += len(servers)
		occ := f.PositionOccupancy(dc.ID)
		if len(occ) != dc.PositionsPerRack+1 {
			t.Fatalf("occupancy len = %d", len(occ))
		}
		sum := 0
		for _, n := range occ {
			sum += n
		}
		if sum != len(servers) {
			t.Errorf("%s: occupancy sums to %d, want %d", dc.ID, sum, len(servers))
		}
		// Top/bottom slots should be sparser than the middle.
		mid := occ[10]
		if occ[1] >= mid && occ[dc.PositionsPerRack] >= mid && mid > 3 {
			t.Errorf("%s: expected sparse boundary slots: %v", dc.ID, occ)
		}
	}
	if total != f.NumServers() {
		t.Errorf("IDC index covers %d of %d servers", total, f.NumServers())
	}
	if f.PositionOccupancy("nope") != nil {
		t.Error("unknown IDC occupancy should be nil")
	}

	lineTotal := 0
	for _, pl := range f.Lines {
		lineTotal += len(f.ServersByLine(pl.Name))
	}
	if lineTotal != f.NumServers() {
		t.Errorf("line index covers %d of %d servers", lineTotal, f.NumServers())
	}
}

func TestCoolingProfiles(t *testing.T) {
	f, err := Build(smallSpec(), 3)
	if err != nil {
		t.Fatal(err)
	}
	// dc01 = hotspots, dc02 = gradient, dc03/dc04 = uniform.
	hot := f.Datacenters[0]
	spikes := 0
	for p := 1; p <= hot.PositionsPerRack; p++ {
		if hot.CoolingAt(p) > 1.4 {
			spikes++
		}
	}
	if spikes != 2 {
		t.Errorf("hotspot DC has %d spikes, want 2", spikes)
	}
	grad := f.Datacenters[1]
	if !(grad.CoolingAt(grad.PositionsPerRack) > grad.CoolingAt(2)) {
		t.Error("gradient DC should be warmer at the top")
	}
	uni := f.Datacenters[2]
	if uni.BuiltYear < 2014 {
		t.Errorf("dc03 built %d, want modern", uni.BuiltYear)
	}
	for p := 1; p <= uni.PositionsPerRack; p++ {
		if c := uni.CoolingAt(p); c < 0.85 || c > 1.15 {
			t.Errorf("uniform DC cooling at %d = %g", p, c)
		}
	}
	if hot.CoolingAt(0) != 1 || hot.CoolingAt(999) != 1 {
		t.Error("out-of-range cooling should be 1")
	}
}

func TestServerWarrantyAndAge(t *testing.T) {
	s := Server{
		DeployTime:    time.Date(2013, 6, 1, 0, 0, 0, 0, time.UTC),
		WarrantyYears: 3,
	}
	if !s.InWarranty(time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)) {
		t.Error("should be in warranty")
	}
	if s.InWarranty(time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC)) {
		t.Error("should be out of warranty")
	}
	if got := s.Age(s.DeployTime.Add(-time.Hour)); got != 0 {
		t.Errorf("pre-deploy age = %v", got)
	}
	if got := s.Age(s.DeployTime.Add(48 * time.Hour)); got != 48*time.Hour {
		t.Errorf("age = %v", got)
	}
}

func TestInventoryAndComponentCount(t *testing.T) {
	f, err := Build(smallSpec(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if f.ComponentCount(fot.HDD) <= f.NumServers() {
		t.Error("HDD count should exceed server count (many drives per server)")
	}
	if f.ComponentCount(fot.Motherboard) != f.NumServers() {
		t.Error("every server has exactly one motherboard")
	}
	// SSD-using lines exist, so some SSDs must be present; lines without
	// SSD must have none.
	ssdLines := map[string]bool{}
	for _, pl := range f.Lines {
		ssdLines[pl.Name] = pl.UsesSSD
	}
	sawSSD := false
	for i := range f.Servers {
		s := &f.Servers[i]
		n := s.Inventory[fot.SSD]
		if n > 0 {
			sawSSD = true
			if !ssdLines[s.ProductLine] {
				t.Errorf("server %d has SSDs but line %s does not use them", s.HostID, s.ProductLine)
			}
		}
	}
	if !sawSSD {
		t.Error("no SSDs anywhere in the fleet")
	}
}

func TestProductLineShapes(t *testing.T) {
	f, err := Build(smallSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	// Zipf weights: the first line should own the largest share.
	first := len(f.ServersByLine(f.Lines[0].Name))
	last := len(f.ServersByLine(f.Lines[len(f.Lines)-1].Name))
	if first <= last {
		t.Errorf("line sizes not skewed: first=%d last=%d", first, last)
	}
	tiers := map[FaultTolerance]bool{}
	for _, pl := range f.Lines {
		tiers[pl.Tolerance] = true
	}
	for _, ft := range []FaultTolerance{FTLow, FTMedium, FTHigh} {
		if !tiers[ft] {
			t.Errorf("missing tolerance tier %v", ft)
		}
	}
	if FTHigh.String() != "high" || FaultTolerance(9).String() == "" {
		t.Error("FaultTolerance String broken")
	}
}

func TestWeightedChooserDistribution(t *testing.T) {
	lines := []ProductLine{
		{Name: "a", Weight: 3},
		{Name: "b", Weight: 1},
	}
	ch := newWeightedChooser(lines)
	f, err := Build(smallSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = f
	rngCounts := [2]int{}
	rng := newTestRand()
	for i := 0; i < 40000; i++ {
		rngCounts[ch.pick(rng)]++
	}
	ratio := float64(rngCounts[0]) / float64(rngCounts[1])
	if ratio < 2.6 || ratio > 3.4 {
		t.Errorf("weighted pick ratio = %g, want ~3", ratio)
	}
}

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(99)) }
