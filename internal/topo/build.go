package topo

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"dcfail/internal/fot"
	"dcfail/internal/stats"
)

// CoolingKind selects a datacenter's thermal evenness (§IV: newer
// facilities have better cooling design and a flatter spatial failure
// distribution).
type CoolingKind int

const (
	// CoolingUniform is a modern (post-2014) even facility.
	CoolingUniform CoolingKind = iota + 1
	// CoolingHotspots is mostly even with a few singular hot positions
	// (the paper's datacenter A: positions 22 and 35 are μ+2σ outliers
	// while the chi-square test overall cannot reject uniformity).
	CoolingHotspots
	// CoolingGradient has a broad under-floor-cooling gradient: the
	// higher the slot, the warmer — plus hot positions (datacenter B,
	// rejected at 0.01).
	CoolingGradient
)

// Spec configures fleet construction. The zero value is not usable; start
// from DefaultSpec.
type Spec struct {
	Datacenters      int
	RacksPerDC       int
	PositionsPerRack int
	Occupancy        float64 // fraction of rack positions holding a server
	ProductLines     int
	WarrantyYears    int
	StudyStart       time.Time // servers deploy from up to ~3y before this
	StudyEnd         time.Time
	// FrailtyAlpha is the Pareto shape of the per-server hazard
	// multiplier; smaller is heavier-tailed (drives Fig. 7).
	FrailtyAlpha float64
	// PreModernDCs is the number of datacenters "built before 2014" that
	// get uneven cooling (§IV: ~90% of post-2014 facilities are uniform).
	PreModernDCs int
}

// DefaultSpec returns the paper-profile fleet shape: 24 datacenters
// (Table IV studies 24 facilities), ~40-slot racks with the top and bottom
// slots often left empty, and a four-year study window.
func DefaultSpec() Spec {
	return Spec{
		Datacenters:      24,
		RacksPerDC:       25,
		PositionsPerRack: 40,
		Occupancy:        0.85,
		ProductLines:     60,
		WarrantyYears:    3,
		StudyStart:       time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC),
		StudyEnd:         time.Date(2016, 12, 31, 0, 0, 0, 0, time.UTC),
		FrailtyAlpha:     1.6,
		PreModernDCs:     14,
	}
}

// Validate reports spec violations.
func (sp Spec) Validate() error {
	switch {
	case sp.Datacenters < 1:
		return fmt.Errorf("topo: spec needs >= 1 datacenter")
	case sp.RacksPerDC < 1 || sp.PositionsPerRack < 4:
		return fmt.Errorf("topo: spec rack shape invalid")
	case sp.Occupancy <= 0 || sp.Occupancy > 1:
		return fmt.Errorf("topo: occupancy %g outside (0, 1]", sp.Occupancy)
	case sp.ProductLines < 1:
		return fmt.Errorf("topo: spec needs >= 1 product line")
	case !sp.StudyEnd.After(sp.StudyStart):
		return fmt.Errorf("topo: study window is empty")
	case sp.FrailtyAlpha <= 1.05:
		return fmt.Errorf("topo: frailty alpha must exceed 1.05 (finite mean)")
	case sp.PreModernDCs < 0 || sp.PreModernDCs > sp.Datacenters:
		return fmt.Errorf("topo: pre-modern datacenter count out of range")
	}
	return nil
}

// generations are the five server hardware generations the example product
// line in §V-A describes ("incrementally deployed ... five different
// generations"). YearsBeforeEnd controls the deployment window.
type generation struct {
	model     string
	inventory map[fot.Component]int
	ssdExtra  map[fot.Component]int // added for SSD-using product lines
	// deployFrom/deployTo are offsets in years relative to StudyStart
	// (negative = before the study window opened).
	deployFrom, deployTo float64
}

func generations() []generation {
	base := func(hdds, dimms int) map[fot.Component]int {
		return map[fot.Component]int{
			fot.HDD: hdds, fot.Memory: dimms, fot.Power: 2, fot.Fan: 4,
			fot.RAIDCard: 1, fot.Motherboard: 1, fot.CPU: 2,
			fot.HDDBackboard: 1, fot.Misc: 1,
		}
	}
	ssd := map[fot.Component]int{fot.SSD: 2, fot.FlashCard: 1}
	return []generation{
		{"gen1", base(8, 8), nil, -3.0, -1.5},
		{"gen2", base(12, 8), ssd, -2.0, 0.0},
		{"gen3", base(12, 16), ssd, -0.5, 1.5},
		{"gen4", base(16, 16), ssd, 1.0, 2.5},
		{"gen5", base(16, 24), ssd, 2.0, 3.6},
	}
}

// Build constructs a deterministic fleet from the spec and seed.
func Build(sp Spec, seed int64) (*Fleet, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	fleet := &Fleet{
		Datacenters: buildDatacenters(sp, rng),
		Lines:       buildProductLines(sp, rng),
	}
	gens := generations()
	lineChooser := newWeightedChooser(fleet.Lines)
	// Mean-normalized heavy-tailed frailty: the tail drives Fig. 7's
	// per-server skew while the fleet-average hazard stays calibrated.
	// The raw Pareto draw is capped — an uncapped α<2 tail has infinite
	// variance, which would swamp every per-position statistic with
	// server-luck noise. E[min(X, c)] = (α − c^(1−α))/(α − 1).
	const frailtyCap = 25.0
	frailty := stats.Pareto{Xm: 1, Alpha: sp.FrailtyAlpha}
	a := sp.FrailtyAlpha
	frailtyMean := (a - math.Pow(frailtyCap, 1-a)) / (a - 1)

	var hostID uint64
	for d := range fleet.Datacenters {
		dc := &fleet.Datacenters[d]
		for r := 1; r <= dc.Racks; r++ {
			for p := 1; p <= dc.PositionsPerRack; p++ {
				// Operators often leave the very top and bottom slots
				// empty (§IV) — model that with reduced occupancy there.
				occ := sp.Occupancy
				if p == 1 || p >= dc.PositionsPerRack-1 {
					occ *= 0.3
				}
				if rng.Float64() >= occ {
					continue
				}
				hostID++
				line := &fleet.Lines[lineChooser.pick(rng)]
				gen := &gens[pickGeneration(gens, rng)]
				deploy := deployTime(sp, gen, rng)
				inv := make(map[fot.Component]int, len(gen.inventory)+2)
				for c, n := range gen.inventory {
					inv[c] = n
				}
				if line.UsesSSD {
					for c, n := range gen.ssdExtra {
						inv[c] = n
					}
				}
				fleet.Servers = append(fleet.Servers, Server{
					HostID:        hostID,
					Hostname:      fmt.Sprintf("%s-r%03d-p%02d", dc.ID, r, p),
					IDC:           dc.ID,
					Rack:          fmt.Sprintf("%s-r%03d", dc.ID, r),
					Position:      p,
					Model:         gen.model,
					ProductLine:   line.Name,
					DeployTime:    deploy,
					WarrantyYears: sp.WarrantyYears,
					Inventory:     inv,
					Frailty:       math.Min(frailty.Rand(rng), frailtyCap) / frailtyMean,
				})
			}
		}
	}
	if err := fleet.Validate(); err != nil {
		return nil, fmt.Errorf("topo: built an invalid fleet: %w", err)
	}
	return fleet, nil
}

func buildDatacenters(sp Spec, rng *rand.Rand) []Datacenter {
	dcs := make([]Datacenter, sp.Datacenters)
	for i := range dcs {
		id := fmt.Sprintf("dc%02d", i+1)
		builtYear := 2014 + i%3 // modern by default
		kind := CoolingUniform
		if i < sp.PreModernDCs {
			builtYear = 2010 + i%4
			// Alternate the two uneven designs; dc01 is the paper's
			// "datacenter A" (spot anomalies), dc02 its "datacenter B"
			// (broad gradient).
			if i%2 == 0 {
				kind = CoolingHotspots
			} else {
				kind = CoolingGradient
			}
		}
		dcs[i] = Datacenter{
			ID:               id,
			BuiltYear:        builtYear,
			Racks:            sp.RacksPerDC,
			PositionsPerRack: sp.PositionsPerRack,
			Cooling:          coolingProfile(kind, sp.PositionsPerRack, rng),
		}
	}
	return dcs
}

// coolingProfile builds a per-position thermal hazard multiplier.
func coolingProfile(kind CoolingKind, positions int, rng *rand.Rand) []float64 {
	prof := make([]float64, positions+1)
	for p := 1; p <= positions; p++ {
		prof[p] = 1
	}
	switch kind {
	case CoolingUniform:
		for p := 1; p <= positions; p++ {
			prof[p] = 1 + 0.02*rng.NormFloat64() // minor facility noise
			if prof[p] < 0.9 {
				prof[p] = 0.9
			}
		}
	case CoolingHotspots:
		// Two singular hot spots: near the rack top (under-floor cooling
		// reaches it last) and beside the rack-level power module.
		top := positions - 5
		power := positions/2 + 2
		prof[top] = 2.8
		prof[power] = 2.3
	case CoolingGradient:
		// Warm air accumulates towards the top third of the rack.
		for p := 1; p <= positions; p++ {
			frac := float64(p) / float64(positions)
			prof[p] = 0.55 + 1.9*frac*frac
		}
		prof[positions-5] += 1.1
	}
	return prof
}

func buildProductLines(sp Spec, rng *rand.Rand) []ProductLine {
	lines := make([]ProductLine, sp.ProductLines)
	// The largest lines are the Hadoop-style batch clusters (§VI-C: "RT
	// is often large for most product lines operating large-scale Hadoop
	// clusters") — so fault tolerance follows size.
	bigCut := sp.ProductLines / 25
	if bigCut < 1 {
		bigCut = 1
	}
	for i := range lines {
		name := fmt.Sprintf("pl-%03d", i+1)
		// Softened Zipf fleet share: a handful of large lines, a long
		// tail of small ones (Fig. 11 spans lines with <100 failures up
		// to the busiest 1%).
		weight := 1 / float64(i+10)
		var tol FaultTolerance
		var workload string
		usesSSD := false
		switch {
		case i < bigCut: // big Hadoop-style batch lines
			tol = FTHigh
			workload = "batch"
		case i%3 == 1: // online user-facing services
			tol = FTLow
			workload = "online"
			usesSSD = true
		default:
			tol = FTMedium
			workload = "mixed"
			usesSSD = rng.Float64() < 0.3
		}
		lines[i] = ProductLine{
			Name: name, Tolerance: tol, Workload: workload,
			UsesSSD: usesSSD, Weight: weight,
		}
	}
	return lines
}

// weightedChooser picks product-line indexes proportionally to Weight.
type weightedChooser struct {
	cum []float64
}

func newWeightedChooser(lines []ProductLine) *weightedChooser {
	cum := make([]float64, len(lines))
	sum := 0.0
	for i, pl := range lines {
		sum += pl.Weight
		cum[i] = sum
	}
	return &weightedChooser{cum: cum}
}

func (w *weightedChooser) pick(rng *rand.Rand) int {
	x := rng.Float64() * w.cum[len(w.cum)-1]
	lo, hi := 0, len(w.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func pickGeneration(gens []generation, rng *rand.Rand) int {
	// Later generations are more numerous (fleet growth).
	weights := []float64{0.10, 0.20, 0.25, 0.25, 0.20}
	x := rng.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if x < acc {
			return i
		}
	}
	return len(gens) - 1
}

func deployTime(sp Spec, gen *generation, rng *rand.Rand) time.Time {
	span := gen.deployTo - gen.deployFrom
	years := gen.deployFrom + rng.Float64()*span
	secs := years * 365.25 * 24 * 3600
	dt := sp.StudyStart.Add(time.Duration(secs * float64(time.Second)))
	// Never deploy after the study window closes.
	if dt.After(sp.StudyEnd) {
		dt = sp.StudyEnd.Add(-24 * time.Hour)
	}
	return dt
}
