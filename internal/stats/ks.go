package stats

import (
	"fmt"
	"math"
	"sort"
)

// KSResult is the outcome of a one-sample Kolmogorov–Smirnov test.
type KSResult struct {
	// D is the KS statistic sup|F_n − F|.
	D float64
	// N is the sample size.
	N int
	// P is the asymptotic p-value P(D_n >= D) under the null.
	P float64
}

// Reject reports whether the null is rejected at level alpha.
func (r KSResult) Reject(alpha float64) bool { return r.P < alpha }

func (r KSResult) String() string {
	return fmt.Sprintf("D=%.4f n=%d p=%.4g", r.D, r.N, r.P)
}

// KSTest runs the one-sample Kolmogorov–Smirnov test of xs against dist.
// The p-value uses the asymptotic Kolmogorov distribution with the
// Stephens small-sample correction; like the paper's chi-squared usage it
// treats dist as fully specified (parameters estimated from the same data
// make the test conservative — rejections remain valid).
func KSTest(xs []float64, dist Dist) (KSResult, error) {
	n := len(xs)
	if n < 8 {
		return KSResult{}, fmt.Errorf("stats: KSTest: need >= 8 observations, got %d", n)
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	d := 0.0
	for i, x := range sorted {
		f := dist.CDF(x)
		if lo := math.Abs(f - float64(i)/float64(n)); lo > d {
			d = lo
		}
		if hi := math.Abs(float64(i+1)/float64(n) - f); hi > d {
			d = hi
		}
	}
	sqrtN := math.Sqrt(float64(n))
	// Stephens' correction maps the finite-n statistic onto the
	// asymptotic distribution.
	t := d * (sqrtN + 0.12 + 0.11/sqrtN)
	return KSResult{D: d, N: n, P: kolmogorovQ(t)}, nil
}

// kolmogorovQ returns Q(t) = 2 Σ_{k>=1} (−1)^{k−1} exp(−2 k² t²), the
// complementary CDF of the Kolmogorov distribution.
func kolmogorovQ(t float64) float64 {
	if t <= 0 {
		return 1
	}
	if t > 7 {
		return 0
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := math.Exp(-2 * float64(k*k) * t * t)
		sum += sign * term
		if term < 1e-12 {
			break
		}
		sign = -sign
	}
	q := 2 * sum
	switch {
	case q < 0:
		return 0
	case q > 1:
		return 1
	default:
		return q
	}
}

// logPDFer is the optional fast path of LogLikelihood: a distribution
// whose log-density has a closed form cheaper than log(PDF(x)). The
// returned closure carries the distribution's constants hoisted out of
// the per-point path.
type logPDFer interface {
	logPDF() func(x float64) float64
}

// LogLikelihood returns the total log-density of xs under dist
// (−Inf if any observation has zero density).
func LogLikelihood(xs []float64, dist Dist) float64 {
	ll := 0.0
	if lp, ok := dist.(logPDFer); ok {
		f := lp.logPDF()
		for _, x := range xs {
			l := f(x)
			if math.IsInf(l, -1) {
				return math.Inf(-1)
			}
			ll += l
		}
		return ll
	}
	for _, x := range xs {
		p := dist.PDF(x)
		if p <= 0 {
			return math.Inf(-1)
		}
		ll += math.Log(p)
	}
	return ll
}

// AIC returns the Akaike information criterion of dist on xs:
// 2k − 2 ln L. Lower is better; it ranks which family is *least bad* even
// when every family is rejected outright — exactly the situation the
// paper's Fig. 5 plots.
func AIC(xs []float64, dist Dist) float64 {
	return 2*float64(dist.NumParams()) - 2*LogLikelihood(xs, dist)
}

// RankFitsByAIC orders fit reports by ascending AIC on the sample.
// Reports with failed fits sort last.
func RankFitsByAIC(xs []float64, reports []FitReport) []FitReport {
	type scored struct {
		r   FitReport
		aic float64
	}
	ss := make([]scored, 0, len(reports))
	for _, r := range reports {
		s := scored{r: r, aic: math.Inf(1)}
		if r.Err == nil {
			s.aic = AIC(xs, r.Dist)
		}
		ss = append(ss, s)
	}
	sort.SliceStable(ss, func(i, j int) bool { return ss[i].aic < ss[j].aic })
	out := make([]FitReport, len(ss))
	for i, s := range ss {
		out[i] = s.r
	}
	return out
}
