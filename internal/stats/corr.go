package stats

import (
	"fmt"
	"math"
	"sort"
)

// PearsonR returns the Pearson product-moment correlation of two equal
// length samples, in [-1, 1].
func PearsonR(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: PearsonR: lengths differ (%d vs %d)", len(xs), len(ys))
	}
	if len(xs) < 3 {
		return 0, fmt.Errorf("stats: PearsonR: need >= 3 pairs, got %d", len(xs))
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("stats: PearsonR: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// SpearmanRho returns the Spearman rank correlation of two equal-length
// samples — the Fig. 11 quantity: does a product line's failure volume
// predict its response time? Ties receive average ranks.
func SpearmanRho(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: SpearmanRho: lengths differ (%d vs %d)", len(xs), len(ys))
	}
	return PearsonR(ranks(xs), ranks(ys))
}

// ranks assigns average ranks (1-based) with tie handling.
func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}
