package stats

import (
	"math/rand"
	"testing"
)

func benchSample(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	d := Weibull{K: 0.9, Lambda: 3}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.Rand(rng)
	}
	return xs
}

func BenchmarkFitExponential(b *testing.B) {
	xs := benchSample(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitExponential(xs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitWeibull(b *testing.B) {
	xs := benchSample(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitWeibull(xs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitGamma(b *testing.B) {
	xs := benchSample(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitGamma(xs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitLogNormal(b *testing.B) {
	xs := benchSample(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitLogNormal(xs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGoodnessOfFit(b *testing.B) {
	xs := benchSample(100000)
	d, err := FitWeibull(xs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GoodnessOfFit(xs, d, 30); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChiSquareUniform(b *testing.B) {
	counts := make([]int, 24)
	for i := range counts {
		counts[i] = 1000 + i*7
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ChiSquareUniform(counts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGammaRegP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		GammaRegP(11.5, float64(i%50))
	}
}

func BenchmarkECDFKSDistance(b *testing.B) {
	xs := benchSample(100000)
	e := NewECDF(xs)
	d := Exponential{Lambda: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.KSDistance(d)
	}
}
