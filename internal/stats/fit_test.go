package stats

import (
	"math"
	"math/rand"
	"testing"
)

func sample(d Dist, n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.Rand(rng)
	}
	return xs
}

func TestFitExponentialRecovers(t *testing.T) {
	truth := Exponential{Lambda: 2.5}
	got, err := FitExponential(sample(truth, 50000, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got.Lambda, truth.Lambda, 0.03) {
		t.Errorf("lambda = %g, want %g", got.Lambda, truth.Lambda)
	}
}

func TestFitWeibullRecovers(t *testing.T) {
	for _, truth := range []Weibull{
		{K: 0.6, Lambda: 2},
		{K: 1.0, Lambda: 5},
		{K: 2.8, Lambda: 0.7},
	} {
		got, err := FitWeibull(sample(truth, 40000, 2))
		if err != nil {
			t.Fatalf("k=%g: %v", truth.K, err)
		}
		if math.Abs(got.K-truth.K) > 0.05*truth.K {
			t.Errorf("k = %g, want %g", got.K, truth.K)
		}
		if math.Abs(got.Lambda-truth.Lambda) > 0.05*truth.Lambda {
			t.Errorf("lambda = %g, want %g", got.Lambda, truth.Lambda)
		}
	}
}

func TestFitGammaRecovers(t *testing.T) {
	for _, truth := range []Gamma{
		{K: 0.5, Theta: 3},
		{K: 2, Theta: 1},
		{K: 9, Theta: 0.25},
	} {
		got, err := FitGamma(sample(truth, 40000, 3))
		if err != nil {
			t.Fatalf("k=%g: %v", truth.K, err)
		}
		if math.Abs(got.K-truth.K) > 0.06*truth.K {
			t.Errorf("k = %g, want %g", got.K, truth.K)
		}
		if math.Abs(got.Theta-truth.Theta) > 0.08*truth.Theta {
			t.Errorf("theta = %g, want %g", got.Theta, truth.Theta)
		}
	}
}

func TestFitLogNormalRecovers(t *testing.T) {
	truth := LogNormal{Mu: 1.2, Sigma: 0.9}
	got, err := FitLogNormal(sample(truth, 50000, 4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Mu-truth.Mu) > 0.03 || math.Abs(got.Sigma-truth.Sigma) > 0.03 {
		t.Errorf("got (%g, %g), want (%g, %g)", got.Mu, got.Sigma, truth.Mu, truth.Sigma)
	}
}

func TestFitNormalRecovers(t *testing.T) {
	truth := Normal{Mu: -3, Sigma: 4}
	got, err := FitNormal(sample(truth, 50000, 5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Mu-truth.Mu) > 0.1 || math.Abs(got.Sigma-truth.Sigma) > 0.1 {
		t.Errorf("got %+v, want %+v", got, truth)
	}
}

func TestFitUniform(t *testing.T) {
	got, err := FitUniform([]float64{3, 1, 2, 5, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got.A != 1 || got.B != 5 {
		t.Errorf("got %+v", got)
	}
}

func TestFitRejectsBadInput(t *testing.T) {
	bad := [][]float64{
		nil,
		{1},
		{1, -2, 3},
		{1, 0, 3},
		{1, math.NaN()},
		{1, math.Inf(1)},
	}
	for _, xs := range bad {
		if _, err := FitExponential(xs); err == nil {
			t.Errorf("FitExponential(%v) should fail", xs)
		}
		if _, err := FitWeibull(xs); err == nil {
			t.Errorf("FitWeibull(%v) should fail", xs)
		}
		if _, err := FitGamma(xs); err == nil {
			t.Errorf("FitGamma(%v) should fail", xs)
		}
		if _, err := FitLogNormal(xs); err == nil {
			t.Errorf("FitLogNormal(%v) should fail", xs)
		}
	}
	if _, err := FitUniform(nil); err == nil {
		t.Error("FitUniform(nil) should fail")
	}
	if _, err := FitNormal([]float64{1}); err == nil {
		t.Error("FitNormal singleton should fail")
	}
}

func TestFitGammaDegenerateSample(t *testing.T) {
	// All-equal observations: s = 0 path.
	g, err := FitGamma([]float64{2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(g.Mean(), 2, 1e-6) {
		t.Errorf("degenerate gamma mean = %g, want 2", g.Mean())
	}
}

func TestFitAllOnExponentialData(t *testing.T) {
	truth := Exponential{Lambda: 1}
	xs := sample(truth, 20000, 6)
	reports := FitAll(xs, 20)
	if len(reports) != 4 {
		t.Fatalf("got %d reports", len(reports))
	}
	byName := map[string]FitReport{}
	for _, r := range reports {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Dist.Name(), r.Err)
		}
		byName[r.Dist.Name()] = r
	}
	// Exponential data: the exponential hypothesis should NOT be rejected
	// at 0.01, and its KS distance should be small.
	if byName["exponential"].Test.Reject(0.001) {
		t.Errorf("exponential fit rejected on exponential data: %v", byName["exponential"].Test)
	}
	if byName["exponential"].KS > 0.02 {
		t.Errorf("exponential KS = %g too large", byName["exponential"].KS)
	}
}
