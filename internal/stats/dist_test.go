package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// allDists returns a representative instance of every distribution family.
func allDists() []Dist {
	return []Dist{
		Uniform{A: -2, B: 5},
		Exponential{Lambda: 0.7},
		Weibull{K: 0.8, Lambda: 3},
		Weibull{K: 2.5, Lambda: 1.5},
		Gamma{K: 0.5, Theta: 2},
		Gamma{K: 4, Theta: 0.5},
		LogNormal{Mu: 1, Sigma: 0.8},
		Normal{Mu: -1, Sigma: 2},
		Pareto{Xm: 1, Alpha: 2.5},
	}
}

func TestCDFQuantileRoundTrip(t *testing.T) {
	for _, d := range allDists() {
		for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			x := d.Quantile(p)
			got := d.CDF(x)
			if !almostEqual(got, p, 1e-6) {
				t.Errorf("%s: CDF(Quantile(%g)) = %g", d.Name(), p, got)
			}
		}
	}
}

func TestCDFMonotoneAndBounded(t *testing.T) {
	for _, d := range allDists() {
		prev := -0.1
		for i := -50; i <= 200; i++ {
			x := float64(i) / 10
			c := d.CDF(x)
			if c < -1e-12 || c > 1+1e-12 {
				t.Fatalf("%s: CDF(%g) = %g out of [0,1]", d.Name(), x, c)
			}
			if c < prev-1e-12 {
				t.Fatalf("%s: CDF not monotone at %g", d.Name(), x)
			}
			prev = c
		}
	}
}

func TestPDFNonNegative(t *testing.T) {
	for _, d := range allDists() {
		for i := -50; i <= 200; i++ {
			x := float64(i) / 10
			if p := d.PDF(x); p < 0 || math.IsNaN(p) {
				t.Fatalf("%s: PDF(%g) = %g", d.Name(), x, p)
			}
		}
	}
}

func TestPDFIntegratesToCDF(t *testing.T) {
	// Trapezoid-integrate the PDF and compare against the CDF difference.
	for _, d := range allDists() {
		lo, hi := d.Quantile(0.05), d.Quantile(0.95)
		const n = 4000
		h := (hi - lo) / n
		integral := 0.0
		for i := 0; i <= n; i++ {
			w := 1.0
			if i == 0 || i == n {
				w = 0.5
			}
			integral += w * d.PDF(lo+float64(i)*h)
		}
		integral *= h
		want := d.CDF(hi) - d.CDF(lo)
		if !almostEqual(integral, want, 1e-3) {
			t.Errorf("%s: ∫pdf = %g, CDF diff = %g", d.Name(), integral, want)
		}
	}
}

func TestRandMatchesMean(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, d := range allDists() {
		if math.IsInf(d.Mean(), 1) {
			continue
		}
		const n = 60000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += d.Rand(rng)
		}
		got := sum / n
		want := d.Mean()
		scale := math.Max(1, math.Abs(want))
		if math.Abs(got-want) > 0.05*scale {
			t.Errorf("%s: sample mean %g, want %g", d.Name(), got, want)
		}
	}
}

func TestRandMatchesCDF(t *testing.T) {
	// Sampling and the analytic CDF must agree: the empirical CDF at the
	// distribution's quartiles should be near 0.25/0.5/0.75.
	rng := rand.New(rand.NewSource(11))
	for _, d := range allDists() {
		const n = 20000
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = d.Rand(rng)
		}
		e := NewECDF(xs)
		for _, p := range []float64{0.25, 0.5, 0.75} {
			got := e.At(d.Quantile(p))
			if math.Abs(got-p) > 0.02 {
				t.Errorf("%s: ECDF at Q(%g) = %g", d.Name(), p, got)
			}
		}
	}
}

func TestExponentialMemoryless(t *testing.T) {
	e := Exponential{Lambda: 1.3}
	// P(X > s+t | X > s) = P(X > t).
	f := func(rs, rt float64) bool {
		s := math.Mod(math.Abs(rs), 3)
		u := math.Mod(math.Abs(rt), 3)
		lhs := (1 - e.CDF(s+u)) / (1 - e.CDF(s))
		rhs := 1 - e.CDF(u)
		return almostEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeibullReducesToExponential(t *testing.T) {
	w := Weibull{K: 1, Lambda: 2}
	e := Exponential{Lambda: 0.5}
	for x := 0.1; x < 10; x += 0.3 {
		if !almostEqual(w.CDF(x), e.CDF(x), 1e-12) {
			t.Fatalf("Weibull(k=1) != Exponential at %g", x)
		}
	}
}

func TestWeibullHazardShape(t *testing.T) {
	infant := Weibull{K: 0.5, Lambda: 1}
	wearout := Weibull{K: 3, Lambda: 1}
	if !(infant.Hazard(0.1) > infant.Hazard(1)) {
		t.Error("k<1 hazard should decrease (infant mortality)")
	}
	if !(wearout.Hazard(1) > wearout.Hazard(0.1)) {
		t.Error("k>1 hazard should increase (wear-out)")
	}
}

func TestGammaReducesToExponential(t *testing.T) {
	g := Gamma{K: 1, Theta: 2}
	e := Exponential{Lambda: 0.5}
	for x := 0.1; x < 10; x += 0.3 {
		if !almostEqual(g.CDF(x), e.CDF(x), 1e-9) {
			t.Fatalf("Gamma(k=1) != Exponential at %g", x)
		}
	}
}

func TestParetoTailHeavierThanExponential(t *testing.T) {
	p := Pareto{Xm: 1, Alpha: 1.5}
	e := Exponential{Lambda: 1 / p.Mean()}
	// Far in the tail, the Pareto survival dominates.
	x := 50.0
	if !(1-p.CDF(x) > 10*(1-e.CDF(x))) {
		t.Error("Pareto tail not heavier than exponential with same mean")
	}
}

func TestPoissonRand(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, mean := range []float64{0, 0.5, 3, 25, 80, 400} {
		const n = 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			k := PoissonRand(rng, mean)
			if k < 0 {
				t.Fatalf("PoissonRand(%g) returned negative %d", mean, k)
			}
			sum += float64(k)
		}
		got := sum / n
		tol := 0.05*mean + 0.05
		if math.Abs(got-mean) > tol {
			t.Errorf("PoissonRand mean %g: got %g", mean, got)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	for _, d := range allDists() {
		if !math.IsNaN(d.Quantile(-0.5)) {
			t.Errorf("%s: Quantile(-0.5) should be NaN", d.Name())
		}
	}
	if q := (Exponential{Lambda: 1}).Quantile(1); !math.IsInf(q, 1) {
		t.Errorf("Exponential Quantile(1) = %g, want +Inf", q)
	}
	if q := (Gamma{K: 2, Theta: 1}).Quantile(0); q != 0 {
		t.Errorf("Gamma Quantile(0) = %g, want 0", q)
	}
}
