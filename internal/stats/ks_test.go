package stats

import (
	"math"
	"testing"
)

func TestKSTestAcceptsTruth(t *testing.T) {
	for _, truth := range []Dist{
		Exponential{Lambda: 0.5},
		Weibull{K: 1.5, Lambda: 2},
		LogNormal{Mu: 0, Sigma: 1},
		Normal{Mu: 3, Sigma: 2},
	} {
		xs := sample(truth, 5000, 41)
		res, err := KSTest(xs, truth)
		if err != nil {
			t.Fatalf("%s: %v", truth.Name(), err)
		}
		if res.Reject(0.001) {
			t.Errorf("%s: true distribution rejected: %v", truth.Name(), res)
		}
		if res.N != 5000 {
			t.Errorf("%s: n = %d", truth.Name(), res.N)
		}
	}
}

func TestKSTestRejectsWrongFamily(t *testing.T) {
	xs := sample(LogNormal{Mu: 0, Sigma: 1.8}, 5000, 42)
	fit, err := FitExponential(xs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := KSTest(xs, fit)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject(0.01) {
		t.Errorf("exponential not rejected on heavy lognormal data: %v", res)
	}
}

func TestKSTestSmallSample(t *testing.T) {
	if _, err := KSTest([]float64{1, 2, 3}, Exponential{Lambda: 1}); err == nil {
		t.Error("tiny sample accepted")
	}
}

func TestKolmogorovQKnownValues(t *testing.T) {
	// Q(1.3581) ≈ 0.05, Q(1.6276) ≈ 0.01 (classic critical values).
	if got := kolmogorovQ(1.3581); math.Abs(got-0.05) > 0.002 {
		t.Errorf("Q(1.3581) = %g, want ≈0.05", got)
	}
	if got := kolmogorovQ(1.6276); math.Abs(got-0.01) > 0.001 {
		t.Errorf("Q(1.6276) = %g, want ≈0.01", got)
	}
	if kolmogorovQ(0) != 1 || kolmogorovQ(-1) != 1 {
		t.Error("Q at t<=0 should be 1")
	}
	if kolmogorovQ(10) != 0 {
		t.Error("Q far in the tail should be 0")
	}
	// Monotone decreasing.
	prev := 1.0
	for x := 0.1; x < 3; x += 0.1 {
		q := kolmogorovQ(x)
		if q > prev+1e-12 {
			t.Fatalf("Q not monotone at %g", x)
		}
		prev = q
	}
}

func TestLogLikelihoodAndAIC(t *testing.T) {
	truth := Exponential{Lambda: 1}
	xs := sample(truth, 2000, 43)
	llTrue := LogLikelihood(xs, truth)
	llWrong := LogLikelihood(xs, Exponential{Lambda: 10})
	if !(llTrue > llWrong) {
		t.Errorf("true lambda should have higher likelihood: %g vs %g", llTrue, llWrong)
	}
	if !math.IsInf(LogLikelihood([]float64{-1}, truth), -1) {
		t.Error("zero-density observation should give -Inf")
	}
	if aic := AIC(xs, truth); aic != 2-2*llTrue {
		t.Errorf("AIC = %g, want %g", aic, 2-2*llTrue)
	}
}

func TestRankFitsByAIC(t *testing.T) {
	// Weibull(k=0.7) data: the Weibull family must out-rank exponential.
	truth := Weibull{K: 0.7, Lambda: 2}
	xs := sample(truth, 5000, 44)
	reports := FitAll(xs, 20)
	ranked := RankFitsByAIC(xs, reports)
	if len(ranked) != len(reports) {
		t.Fatalf("rank changed count: %d vs %d", len(ranked), len(reports))
	}
	posOf := func(name string) int {
		for i, r := range ranked {
			if r.Dist.Name() == name {
				return i
			}
		}
		return -1
	}
	if !(posOf("weibull") < posOf("exponential")) {
		t.Errorf("weibull should beat exponential on its own data: order %v",
			[]string{ranked[0].Dist.Name(), ranked[1].Dist.Name(), ranked[2].Dist.Name(), ranked[3].Dist.Name()})
	}
	// A failed fit must sort last.
	broken := append([]FitReport{}, reports...)
	broken[0].Err = ErrConverge
	ranked = RankFitsByAIC(xs, broken)
	if ranked[len(ranked)-1].Err == nil {
		t.Error("failed fit not sorted last")
	}
}
