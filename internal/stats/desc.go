package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs, or NaN if
// fewer than two observations are given.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the smallest element of xs, or NaN if xs is empty.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or NaN if xs is empty.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Median returns the sample median of xs, or NaN if xs is empty.
// The input is not modified.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the p-quantile of xs (0 <= p <= 1) using linear
// interpolation between order statistics (the common "type 7" estimator).
// The input is not modified. It returns NaN for empty input or p outside
// [0, 1].
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 || p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p)
}

// QuantileSorted returns the type-7 p-quantile of an already
// ascending-sorted sample — Quantile without the copy and sort. It
// returns NaN for empty input or p outside [0, 1].
func QuantileSorted(xs []float64, p float64) float64 {
	if len(xs) == 0 || p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	return quantileSorted(xs, p)
}

// quantileSorted computes the type-7 quantile assuming xs is sorted.
func quantileSorted(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 1 {
		return xs[0]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return xs[n-1]
	}
	frac := h - float64(lo)
	// Weighted form avoids overflow when xs spans the float64 range.
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	P90    float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary of xs in a single sorted pass.
// It returns a zero-N Summary for empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Summary{
		N:      len(sorted),
		Mean:   Mean(sorted),
		StdDev: StdDev(sorted),
		Min:    sorted[0],
		P25:    quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		P75:    quantileSorted(sorted, 0.75),
		P90:    quantileSorted(sorted, 0.90),
		P99:    quantileSorted(sorted, 0.99),
		Max:    sorted[len(sorted)-1],
	}
}
