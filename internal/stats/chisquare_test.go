package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChiSquarePValueKnown(t *testing.T) {
	// Classic critical values: P(X²_1 >= 3.841) ≈ 0.05, P(X²_10 >= 18.307) ≈ 0.05.
	cases := []struct {
		stat float64
		df   int
		want float64
	}{
		{3.841, 1, 0.05},
		{6.635, 1, 0.01},
		{18.307, 10, 0.05},
		{0, 5, 1},
	}
	for _, c := range cases {
		got := ChiSquarePValue(c.stat, c.df)
		if math.Abs(got-c.want) > 5e-4 {
			t.Errorf("p(%g, %d) = %g, want %g", c.stat, c.df, got, c.want)
		}
	}
	if !math.IsNaN(ChiSquarePValue(1, 0)) {
		t.Error("df=0 should give NaN")
	}
	if !math.IsNaN(ChiSquarePValue(-1, 3)) {
		t.Error("negative stat should give NaN")
	}
}

func TestChiSquareUniformAcceptsUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	counts := make([]int, 24)
	for i := 0; i < 24000; i++ {
		counts[rng.Intn(24)]++
	}
	res, err := ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.001) {
		t.Errorf("uniform counts rejected: %v", res)
	}
	if res.DF != 23 {
		t.Errorf("df = %d, want 23", res.DF)
	}
}

func TestChiSquareUniformRejectsSkewed(t *testing.T) {
	// Strong diurnal pattern: hours 9-18 get 3x the load.
	counts := make([]int, 24)
	for h := range counts {
		counts[h] = 100
		if h >= 9 && h <= 18 {
			counts[h] = 300
		}
	}
	res, err := ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject(0.01) {
		t.Errorf("skewed counts not rejected: %v", res)
	}
}

func TestChiSquareUniformWeighted(t *testing.T) {
	// Counts exactly proportional to weights: perfect fit, p = 1.
	counts := []int{10, 20, 30, 40}
	weights := []float64{1, 2, 3, 4}
	res, err := ChiSquareUniformWeighted(counts, weights)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stat != 0 || !almostEqual(res.P, 1, 1e-12) {
		t.Errorf("perfect weighted fit: %v", res)
	}
	// Same counts against equal weights must be rejected.
	res2, err := ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Reject(0.05) {
		t.Errorf("unequal counts vs equal weights not rejected: %v", res2)
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, err := ChiSquareUniform([]int{5}); err == nil {
		t.Error("single cell should fail")
	}
	if _, err := ChiSquareUniform([]int{0, 0}); err == nil {
		t.Error("all-zero should fail")
	}
	if _, err := ChiSquareUniform([]int{1, -1}); err == nil {
		t.Error("negative count should fail")
	}
	if _, err := ChiSquareUniformWeighted([]int{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := ChiSquareUniformWeighted([]int{1, 2}, []float64{0, 0}); err == nil {
		t.Error("zero weights should fail")
	}
	if _, err := ChiSquareUniformWeighted([]int{1, 2}, []float64{1, -1}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := ChiSquareTest([]int{1, 2}, []float64{1}, 0); err == nil {
		t.Error("observed/expected mismatch should fail")
	}
}

func TestPoolSparseCells(t *testing.T) {
	obs := []int{1, 1, 1, 50, 2}
	exp := []float64{1, 1, 1, 50, 2}
	po, pe := poolSparseCells(obs, exp, 5)
	if len(po) != len(pe) {
		t.Fatal("pooled lengths differ")
	}
	sumO, sumE := 0, 0.0
	for i := range po {
		if pe[i] < 5 && i < len(pe)-1 {
			t.Errorf("cell %d still sparse: %g", i, pe[i])
		}
		sumO += po[i]
		sumE += pe[i]
	}
	if sumO != 55 || !almostEqual(sumE, 55, 1e-12) {
		t.Errorf("pooling lost mass: %d, %g", sumO, sumE)
	}
}

func TestPoolPreservesTotalsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		obs := make([]int, len(raw))
		exp := make([]float64, len(raw))
		sumO := 0
		for i, r := range raw {
			obs[i] = int(r)
			exp[i] = float64(r) + 0.5
			sumO += int(r)
		}
		po, pe := poolSparseCells(obs, exp, 5)
		gotO := 0
		gotE := 0.0
		for i := range po {
			gotO += po[i]
			gotE += pe[i]
		}
		wantE := 0.0
		for _, e := range exp {
			wantE += e
		}
		return gotO == sumO && almostEqual(gotE, wantE, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGoodnessOfFitAcceptsTruth(t *testing.T) {
	for _, truth := range []Dist{
		Exponential{Lambda: 0.4},
		Weibull{K: 1.7, Lambda: 2},
		LogNormal{Mu: 0, Sigma: 1},
	} {
		xs := sample(truth, 20000, 21)
		res, err := GoodnessOfFit(xs, truth, 20)
		if err != nil {
			t.Fatalf("%s: %v", truth.Name(), err)
		}
		if res.Reject(0.001) {
			t.Errorf("%s: true distribution rejected: %v", truth.Name(), res)
		}
	}
}

func TestGoodnessOfFitRejectsWrongFamily(t *testing.T) {
	// Heavy-tailed lognormal data vs a fitted exponential: must reject.
	truth := LogNormal{Mu: 0, Sigma: 1.8}
	xs := sample(truth, 20000, 22)
	expFit, err := FitExponential(xs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GoodnessOfFit(xs, expFit, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject(0.01) {
		t.Errorf("exponential not rejected on lognormal data: %v", res)
	}
}

func TestGoodnessOfFitErrors(t *testing.T) {
	xs := sample(Exponential{Lambda: 1}, 30, 23)
	if _, err := GoodnessOfFit(xs, Exponential{Lambda: 1}, 20); err == nil {
		t.Error("too-small sample should fail")
	}
	if _, err := GoodnessOfFit(xs, Exponential{Lambda: 1}, 2); err == nil {
		t.Error("too-few bins should fail")
	}
}

func TestSearchEdges(t *testing.T) {
	edges := []float64{math.Inf(-1), 1, 2, 3, math.Inf(1)}
	cases := []struct {
		x    float64
		want int
	}{
		{-5, 0}, {0.99, 0}, {1, 1}, {1.5, 1}, {2, 2}, {2.99, 2}, {3, 3}, {100, 3},
	}
	for _, c := range cases {
		if got := searchEdges(edges, c.x); got != c.want {
			t.Errorf("searchEdges(%g) = %d, want %d", c.x, got, c.want)
		}
	}
}
