package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram bins observations into contiguous intervals.
// Bin i covers [Edges[i], Edges[i+1]); the final bin is closed on the right.
type Histogram struct {
	Edges  []float64 // len = number of bins + 1, strictly increasing
	Counts []int     // len = number of bins
	total  int
}

// NewHistogram creates a histogram with the given bin edges.
// Edges must be strictly increasing and contain at least two values.
func NewHistogram(edges []float64) (*Histogram, error) {
	if len(edges) < 2 {
		return nil, fmt.Errorf("stats: histogram needs >= 2 edges, got %d", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		if !(edges[i] > edges[i-1]) {
			return nil, fmt.Errorf("stats: histogram edges not strictly increasing at %d", i)
		}
	}
	cp := make([]float64, len(edges))
	copy(cp, edges)
	return &Histogram{Edges: cp, Counts: make([]int, len(edges)-1)}, nil
}

// UniformEdges returns n+1 equally spaced edges spanning [lo, hi].
func UniformEdges(lo, hi float64, n int) []float64 {
	edges := make([]float64, n+1)
	for i := range edges {
		edges[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	edges[n] = hi
	return edges
}

// QuantileEdges returns edges at evenly spaced quantiles of xs so each bin
// receives roughly the same number of observations — the recommended
// binning for chi-squared goodness-of-fit tests. Duplicate edges caused by
// ties are collapsed; the result may therefore have fewer than n bins.
func QuantileEdges(xs []float64, n int) []float64 {
	if len(xs) == 0 || n < 1 {
		return nil
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	edges := make([]float64, 0, n+1)
	for i := 0; i <= n; i++ {
		e := quantileSorted(sorted, float64(i)/float64(n))
		if len(edges) == 0 || e > edges[len(edges)-1] {
			edges = append(edges, e)
		}
	}
	if len(edges) < 2 {
		return nil
	}
	return edges
}

// Add bins a single observation. Values outside [Edges[0], Edges[last]]
// are clamped into the first or last bin so totals are preserved.
func (h *Histogram) Add(x float64) {
	h.total++
	n := len(h.Counts)
	if x < h.Edges[0] {
		h.Counts[0]++
		return
	}
	if x >= h.Edges[n] {
		h.Counts[n-1]++
		return
	}
	// First edge > x, minus one, is the bin.
	idx := sort.SearchFloat64s(h.Edges, x)
	if idx < len(h.Edges) && h.Edges[idx] == x {
		// x sits exactly on an edge: belongs to the bin starting at x.
		h.Counts[minInt(idx, n-1)]++
		return
	}
	h.Counts[idx-1]++
}

// AddAll bins every observation in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of observations binned so far.
func (h *Histogram) Total() int { return h.total }

// Fractions returns each bin's share of the total (zeros if empty).
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// Expected returns the expected count per bin under dist, scaled to the
// histogram's total. Mass outside the edge span is folded into the
// boundary bins, mirroring Add's clamping.
func (h *Histogram) Expected(dist Dist) []float64 {
	n := len(h.Counts)
	out := make([]float64, n)
	total := float64(h.total)
	for i := 0; i < n; i++ {
		lo, hi := h.Edges[i], h.Edges[i+1]
		p := dist.CDF(hi) - dist.CDF(lo)
		if i == 0 {
			p += dist.CDF(lo) // mass below the first edge
		}
		if i == n-1 {
			p += 1 - dist.CDF(hi) // mass above the last edge
		}
		out[i] = math.Max(p, 0) * total
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
