package stats

import (
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function over a sample.
// The zero value is not usable; construct with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an empirical CDF from xs. The input is copied and may be
// reused by the caller. An empty sample yields an ECDF whose At always
// returns NaN.
func NewECDF(xs []float64) *ECDF {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}
}

// NewECDFSorted builds an empirical CDF from an already ascending-sorted
// sample without copying or re-sorting — the incremental TBF path keeps a
// merged sorted view across folds. The ECDF aliases xs: the caller must
// not mutate the first len(xs) elements afterwards (appending beyond
// len(xs) into spare capacity is fine).
func NewECDFSorted(xs []float64) *ECDF {
	return &ECDF{sorted: xs}
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns the fraction of the sample <= x.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	// Index of first element > x.
	idx := sort.SearchFloat64s(e.sorted, x)
	for idx < len(e.sorted) && e.sorted[idx] == x {
		idx++
	}
	return float64(idx) / float64(len(e.sorted))
}

// Quantile returns the p-quantile of the sample (type-7 interpolation).
func (e *ECDF) Quantile(p float64) float64 {
	if len(e.sorted) == 0 || p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	return quantileSorted(e.sorted, p)
}

// Points returns up to n (x, F(x)) pairs sampled evenly across the sorted
// sample, suitable for plotting a CDF curve. If the sample has fewer than
// n points, every point is returned.
func (e *ECDF) Points(n int) []Point {
	m := len(e.sorted)
	if m == 0 || n <= 0 {
		return nil
	}
	if n > m {
		n = m
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (m - 1) / max(n-1, 1)
		pts = append(pts, Point{
			X: e.sorted[idx],
			Y: float64(idx+1) / float64(m),
		})
	}
	return pts
}

// KSDistance returns the Kolmogorov–Smirnov statistic
// sup_x |F_n(x) − F(x)| between the empirical CDF and the CDF of dist.
// Useful as a scale-free measure of fit quality alongside chi-squared.
//
// Large samples use an exact branch-and-bound over the sorted points:
// F is nondecreasing, so a block whose endpoint CDF values bound every
// interior deviation below the running maximum cannot contain the
// supremum and is skipped without evaluating its interior. The result is
// the same maximum the plain scan finds, at a fraction of the CDF calls.
func (e *ECDF) KSDistance(dist Dist) float64 {
	n := len(e.sorted)
	if n == 0 {
		return math.NaN()
	}
	if n < 2048 {
		d := 0.0
		for i, x := range e.sorted {
			d = ksPoint(d, dist.CDF(x), i, n)
		}
		return d
	}

	// Seed the running maximum from a coarse stride so the block pass
	// starts with a tight skip threshold.
	d := 0.0
	const seeds = 256
	for s := 0; s < seeds; s++ {
		i := s * (n - 1) / (seeds - 1)
		d = ksPoint(d, dist.CDF(e.sorted[i]), i, n)
	}

	// ksSlack absorbs sub-ulp non-monotonicity in numeric CDFs (e.g. the
	// regularized incomplete gamma): a block is only skipped when its
	// bound clears the running maximum by more than any such wobble.
	const ksSlack = 1e-9
	const block = 64
	a := 0
	fa := dist.CDF(e.sorted[0])
	for {
		b := a + block - 1
		if b >= n {
			b = n - 1
		}
		fb := dist.CDF(e.sorted[b])
		// For i in [a, b]: F(x_i) ∈ [fa, fb] and i/n ∈ [a/n, b/n], so
		// every deviation in the block is bounded by the widest corner gap.
		bound := fb - float64(a)/float64(n)
		if alt := float64(b+1)/float64(n) - fa; alt > bound {
			bound = alt
		}
		d = ksPoint(d, fa, a, n)
		if bound+ksSlack > d {
			for i := a + 1; i < b; i++ {
				d = ksPoint(d, dist.CDF(e.sorted[i]), i, n)
			}
		}
		d = ksPoint(d, fb, b, n)
		if b+1 >= n {
			return d
		}
		a = b + 1
		fa = dist.CDF(e.sorted[a])
	}
}

// ksPoint folds one sample point's two KS deviations into the running
// maximum: f is dist.CDF at the i-th sorted sample of n.
func ksPoint(d, f float64, i, n int) float64 {
	if lo := math.Abs(f - float64(i)/float64(n)); lo > d {
		d = lo
	}
	if hi := math.Abs(float64(i+1)/float64(n) - f); hi > d {
		d = hi
	}
	return d
}

// Point is an (X, Y) pair of a plotted series.
type Point struct {
	X, Y float64
}
