package stats

import (
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function over a sample.
// The zero value is not usable; construct with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an empirical CDF from xs. The input is copied and may be
// reused by the caller. An empty sample yields an ECDF whose At always
// returns NaN.
func NewECDF(xs []float64) *ECDF {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns the fraction of the sample <= x.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	// Index of first element > x.
	idx := sort.SearchFloat64s(e.sorted, x)
	for idx < len(e.sorted) && e.sorted[idx] == x {
		idx++
	}
	return float64(idx) / float64(len(e.sorted))
}

// Quantile returns the p-quantile of the sample (type-7 interpolation).
func (e *ECDF) Quantile(p float64) float64 {
	if len(e.sorted) == 0 || p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	return quantileSorted(e.sorted, p)
}

// Points returns up to n (x, F(x)) pairs sampled evenly across the sorted
// sample, suitable for plotting a CDF curve. If the sample has fewer than
// n points, every point is returned.
func (e *ECDF) Points(n int) []Point {
	m := len(e.sorted)
	if m == 0 || n <= 0 {
		return nil
	}
	if n > m {
		n = m
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (m - 1) / max(n-1, 1)
		pts = append(pts, Point{
			X: e.sorted[idx],
			Y: float64(idx+1) / float64(m),
		})
	}
	return pts
}

// KSDistance returns the Kolmogorov–Smirnov statistic
// sup_x |F_n(x) − F(x)| between the empirical CDF and the CDF of dist.
// Useful as a scale-free measure of fit quality alongside chi-squared.
func (e *ECDF) KSDistance(dist Dist) float64 {
	n := len(e.sorted)
	if n == 0 {
		return math.NaN()
	}
	d := 0.0
	for i, x := range e.sorted {
		f := dist.CDF(x)
		lo := math.Abs(f - float64(i)/float64(n))
		hi := math.Abs(float64(i+1)/float64(n) - f)
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d
}

// Point is an (X, Y) pair of a plotted series.
type Point struct {
	X, Y float64
}
