package stats

import (
	"fmt"
	"math"
	"sort"
)

// ChiSquareResult is the outcome of a Pearson chi-squared test.
type ChiSquareResult struct {
	Stat float64 // the X² statistic
	DF   int     // degrees of freedom
	P    float64 // p-value: P(X²_DF >= Stat)
}

// Reject reports whether the null hypothesis is rejected at the given
// significance level alpha (e.g. 0.05, or the paper's 0.01 / 0.02).
func (r ChiSquareResult) Reject(alpha float64) bool {
	return r.P < alpha
}

func (r ChiSquareResult) String() string {
	return fmt.Sprintf("X²=%.3f df=%d p=%.4g", r.Stat, r.DF, r.P)
}

// ChiSquarePValue returns P(X²_df >= stat) via the regularized upper
// incomplete gamma function.
func ChiSquarePValue(stat float64, df int) float64 {
	if df <= 0 || stat < 0 || math.IsNaN(stat) {
		return math.NaN()
	}
	return GammaRegQ(float64(df)/2, stat/2)
}

// ChiSquareTest runs a Pearson chi-squared test of observed counts against
// expected counts. extraConstraints is the number of parameters estimated
// from the data (reducing degrees of freedom below bins−1). Cells with
// expected count below minExpected (conventionally 5) are pooled with their
// right neighbour before testing.
func ChiSquareTest(observed []int, expected []float64, extraConstraints int) (ChiSquareResult, error) {
	if len(observed) != len(expected) {
		return ChiSquareResult{}, fmt.Errorf(
			"stats: ChiSquareTest: observed (%d) and expected (%d) lengths differ",
			len(observed), len(expected))
	}
	obs, exp := poolSparseCells(observed, expected, 5)
	if len(obs) < 2 {
		return ChiSquareResult{}, fmt.Errorf("stats: ChiSquareTest: only %d usable cells after pooling", len(obs))
	}
	stat := 0.0
	for i := range obs {
		if exp[i] <= 0 {
			return ChiSquareResult{}, fmt.Errorf("stats: ChiSquareTest: expected[%d] = %g <= 0", i, exp[i])
		}
		d := float64(obs[i]) - exp[i]
		stat += d * d / exp[i]
	}
	df := len(obs) - 1 - extraConstraints
	if df < 1 {
		df = 1
	}
	return ChiSquareResult{Stat: stat, DF: df, P: ChiSquarePValue(stat, df)}, nil
}

// poolSparseCells merges adjacent cells until every expected count reaches
// minExp, preserving totals. This is the standard remedy for the chi-squared
// approximation breaking down in sparse cells.
func poolSparseCells(observed []int, expected []float64, minExp float64) ([]int, []float64) {
	obs := make([]int, 0, len(observed))
	exp := make([]float64, 0, len(expected))
	accO, accE := 0, 0.0
	for i := range observed {
		accO += observed[i]
		accE += expected[i]
		if accE >= minExp {
			obs = append(obs, accO)
			exp = append(exp, accE)
			accO, accE = 0, 0.0
		}
	}
	if accE > 0 || accO > 0 {
		if len(exp) > 0 {
			obs[len(obs)-1] += accO
			exp[len(exp)-1] += accE
		} else {
			obs = append(obs, accO)
			exp = append(exp, accE)
		}
	}
	return obs, exp
}

// ChiSquareUniform tests the null hypothesis that counts are draws from a
// discrete uniform distribution over their cells — the test behind the
// paper's Hypotheses 1, 2 and 5.
func ChiSquareUniform(counts []int) (ChiSquareResult, error) {
	return ChiSquareUniformWeighted(counts, nil)
}

// ChiSquareUniformWeighted tests counts against expectations proportional
// to weights (e.g. servers per rack position, so positions with more
// servers are expected to see proportionally more failures). A nil or
// empty weights slice means equal weights.
func ChiSquareUniformWeighted(counts []int, weights []float64) (ChiSquareResult, error) {
	if len(counts) < 2 {
		return ChiSquareResult{}, fmt.Errorf("stats: ChiSquareUniform: need >= 2 cells, got %d", len(counts))
	}
	total := 0
	for _, c := range counts {
		if c < 0 {
			return ChiSquareResult{}, fmt.Errorf("stats: ChiSquareUniform: negative count %d", c)
		}
		total += c
	}
	if total == 0 {
		return ChiSquareResult{}, fmt.Errorf("stats: ChiSquareUniform: all counts are zero")
	}
	expected := make([]float64, len(counts))
	if len(weights) == 0 {
		for i := range expected {
			expected[i] = float64(total) / float64(len(counts))
		}
	} else {
		if len(weights) != len(counts) {
			return ChiSquareResult{}, fmt.Errorf(
				"stats: ChiSquareUniform: weights (%d) and counts (%d) lengths differ",
				len(weights), len(counts))
		}
		wsum := Sum(weights)
		if wsum <= 0 {
			return ChiSquareResult{}, fmt.Errorf("stats: ChiSquareUniform: non-positive weight sum")
		}
		for i, w := range weights {
			if w < 0 {
				return ChiSquareResult{}, fmt.Errorf("stats: ChiSquareUniform: negative weight %g", w)
			}
			expected[i] = float64(total) * w / wsum
		}
	}
	return ChiSquareTest(counts, expected, 0)
}

// GoodnessOfFit tests the null hypothesis that sample xs was drawn from
// dist, using nBins equiprobable bins (per the fitted distribution's
// quantiles) and charging dist.NumParams() degrees of freedom for the
// fitted parameters — the paper's Hypothesis 3/4 machinery.
func GoodnessOfFit(xs []float64, dist Dist, nBins int) (ChiSquareResult, error) {
	if len(xs) < 2*nBins {
		return ChiSquareResult{}, fmt.Errorf(
			"stats: GoodnessOfFit: sample of %d too small for %d bins", len(xs), nBins)
	}
	if nBins < 3 {
		return ChiSquareResult{}, fmt.Errorf("stats: GoodnessOfFit: need >= 3 bins, got %d", nBins)
	}
	// Equiprobable bin edges under the hypothesized distribution.
	edges := make([]float64, nBins+1)
	edges[0] = math.Inf(-1)
	edges[nBins] = math.Inf(1)
	for i := 1; i < nBins; i++ {
		edges[i] = dist.Quantile(float64(i) / float64(nBins))
	}
	// Guard against degenerate quantiles (e.g. heavy ties at zero).
	for i := 1; i < nBins; i++ {
		if !(edges[i] > edges[i-1]) {
			return ChiSquareResult{}, fmt.Errorf("stats: GoodnessOfFit: degenerate quantile edges from %s", dist.Name())
		}
	}
	observed := make([]int, nBins)
	for _, x := range xs {
		idx := searchEdges(edges, x)
		observed[idx]++
	}
	expected := make([]float64, nBins)
	per := float64(len(xs)) / float64(nBins)
	for i := range expected {
		expected[i] = per
	}
	return ChiSquareTest(observed, expected, dist.NumParams())
}

// GoodnessOfFit over an already-sorted sample: bin occupancy comes from
// nBins−1 binary searches for the edge positions instead of a search per
// point. The counts are the exact per-point binning of the same multiset
// (searchEdges puts x == edges[i] into bin i; the first sorted index >= an
// edge marks the same boundary), so the test outcome is identical.
func (e *ECDF) GoodnessOfFit(dist Dist, nBins int) (ChiSquareResult, error) {
	xs := e.sorted
	if len(xs) < 2*nBins {
		return ChiSquareResult{}, fmt.Errorf(
			"stats: GoodnessOfFit: sample of %d too small for %d bins", len(xs), nBins)
	}
	if nBins < 3 {
		return ChiSquareResult{}, fmt.Errorf("stats: GoodnessOfFit: need >= 3 bins, got %d", nBins)
	}
	edges := make([]float64, nBins+1)
	edges[0] = math.Inf(-1)
	edges[nBins] = math.Inf(1)
	for i := 1; i < nBins; i++ {
		edges[i] = dist.Quantile(float64(i) / float64(nBins))
	}
	for i := 1; i < nBins; i++ {
		if !(edges[i] > edges[i-1]) {
			return ChiSquareResult{}, fmt.Errorf("stats: GoodnessOfFit: degenerate quantile edges from %s", dist.Name())
		}
	}
	observed := make([]int, nBins)
	prev := 0
	for i := 1; i < nBins; i++ {
		// First sample index >= edges[i]: everything before it sits in
		// bins below i, exactly as searchEdges would place it.
		idx := sort.SearchFloat64s(xs, edges[i])
		observed[i-1] = idx - prev
		prev = idx
	}
	observed[nBins-1] = len(xs) - prev
	expected := make([]float64, nBins)
	per := float64(len(xs)) / float64(nBins)
	for i := range expected {
		expected[i] = per
	}
	return ChiSquareTest(observed, expected, dist.NumParams())
}

// searchEdges returns the bin index for x given edges of length nBins+1
// where edges[0] = -Inf and edges[nBins] = +Inf.
func searchEdges(edges []float64, x float64) int {
	lo, hi := 0, len(edges)-1 // invariant: edges[lo] <= x < edges[hi]
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if x >= edges[mid] {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// FitReport is the outcome of fitting one distribution family to a sample
// and testing the fit.
type FitReport struct {
	Dist Dist
	Test ChiSquareResult
	KS   float64
	Err  error // non-nil if fitting or testing failed
}

// FitAll fits exponential, Weibull, gamma and lognormal distributions to
// xs by MLE and chi-square-tests each — the paper's §II-B procedure.
// Fit failures are reported per-family in FitReport.Err rather than
// aborting the whole comparison.
func FitAll(xs []float64, nBins int) []FitReport {
	return FitAllWithECDF(xs, NewECDF(xs), nBins)
}

// FitAllWithECDF is FitAll against a caller-supplied ECDF of the same
// sample, for callers that already maintain a sorted view of xs (the
// incremental TBF path) and would otherwise pay a redundant O(n log n)
// sort. The ECDF must be built over exactly the multiset of xs.
func FitAllWithECDF(xs []float64, ecdf *ECDF, nBins int) []FitReport {
	reports := make([]FitReport, 0, 4)
	add := func(d Dist, err error) {
		r := FitReport{Dist: d, Err: err}
		if err == nil {
			r.Test, r.Err = ecdf.GoodnessOfFit(d, nBins)
			r.KS = ecdf.KSDistance(d)
		}
		reports = append(reports, r)
	}
	e, err := FitExponential(xs)
	add(e, err)
	w, err := FitWeibull(xs)
	add(w, err)
	g, err := FitGamma(xs)
	add(g, err)
	l, err := FitLogNormal(xs)
	add(l, err)
	return reports
}
