// Package stats provides the statistical machinery used throughout dcfail:
// descriptive statistics, empirical distributions, parametric probability
// distributions with maximum-likelihood fitting, and Pearson chi-squared
// hypothesis tests. It is self-contained (stdlib only) and deterministic
// when driven by a seeded *rand.Rand.
//
// The package exists because the paper's methodology section (DSN'17 §II-B)
// relies on exactly these tools: MLE parameter estimation followed by
// chi-squared goodness-of-fit tests against uniform, exponential, Weibull,
// gamma and lognormal hypotheses.
package stats

import (
	"errors"
	"math"
)

// ErrConverge is returned by iterative routines (MLE fitters, quantile
// inversions) that fail to converge within their iteration budget.
var ErrConverge = errors.New("stats: iteration did not converge")

const (
	epsRel   = 1e-12
	maxIters = 300
)

// GammaRegP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a) for a > 0, x >= 0.
//
// P is the CDF of the gamma distribution with shape a and scale 1, and
// P(k/2, x/2) is the CDF of the chi-squared distribution with k degrees
// of freedom — the quantity behind every p-value in this package.
func GammaRegP(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case x < a+1:
		return gammaPSeries(a, x)
	default:
		return 1 - gammaQContinuedFraction(a, x)
	}
}

// GammaRegQ returns the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaRegQ(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 1
	case x < a+1:
		return 1 - gammaPSeries(a, x)
	default:
		return gammaQContinuedFraction(a, x)
	}
}

// gammaPSeries evaluates P(a,x) by its power series, accurate for x < a+1.
func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIters; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*epsRel {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQContinuedFraction evaluates Q(a,x) by Lentz's continued fraction,
// accurate for x >= a+1.
func gammaQContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIters; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < epsRel {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// Digamma returns the digamma function ψ(x) = d/dx ln Γ(x) for x > 0.
// It is used by the gamma MLE fitter.
func Digamma(x float64) float64 {
	if x <= 0 || math.IsNaN(x) {
		return math.NaN()
	}
	// Recurrence to push x into the asymptotic regime.
	result := 0.0
	for x < 6 {
		result -= 1 / x
		x++
	}
	// Asymptotic expansion.
	inv := 1 / x
	inv2 := inv * inv
	result += math.Log(x) - 0.5*inv -
		inv2*(1.0/12-inv2*(1.0/120-inv2*(1.0/252-inv2/240)))
	return result
}

// Trigamma returns ψ'(x), the derivative of the digamma function, for x > 0.
// It is used by Newton steps in the gamma MLE fitter.
func Trigamma(x float64) float64 {
	if x <= 0 || math.IsNaN(x) {
		return math.NaN()
	}
	result := 0.0
	for x < 6 {
		result += 1 / (x * x)
		x++
	}
	inv := 1 / x
	inv2 := inv * inv
	result += inv * (1 + 0.5*inv + inv2*(1.0/6-inv2*(1.0/30-inv2*(1.0/42-inv2/30))))
	return result
}

// NormQuantile returns the quantile (inverse CDF) of the standard normal
// distribution at probability p in (0, 1). It uses Acklam's rational
// approximation refined by one Halley step, giving near machine precision.
func NormQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		default:
			return math.NaN()
		}
	}
	x := acklam(p)
	// One Halley refinement using the exact CDF via erf.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// acklam is Peter Acklam's rational approximation to the standard normal
// quantile, with relative error below 1.15e-9 over (0,1).
func acklam(p float64) float64 {
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}
