package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVarianceBasics(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := Variance(xs); !almostEqual(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %g, want %g", got, 32.0/7)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %g", got)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance singleton should be NaN")
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("Median(nil) should be NaN")
	}
	if got := Median([]float64{42}); got != 42 {
		t.Errorf("Median singleton = %g", got)
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("Min/Max of empty should be NaN")
	}
}

func TestMedianEvenOdd(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %g, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %g, want 2.5", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	_ = Quantile(xs, 0.9)
	want := []float64{5, 1, 4, 2, 3}
	for i := range xs {
		if xs[i] != want[i] {
			t.Fatalf("Quantile mutated input at %d", i)
		}
	}
}

func TestQuantileBounds(t *testing.T) {
	xs := []float64{10, 20, 30}
	if got := Quantile(xs, 0); got != 10 {
		t.Errorf("Q(0) = %g", got)
	}
	if got := Quantile(xs, 1); got != 30 {
		t.Errorf("Q(1) = %g", got)
	}
	if got := Quantile(xs, 0.5); got != 20 {
		t.Errorf("Q(0.5) = %g", got)
	}
	if !math.IsNaN(Quantile(xs, -0.1)) || !math.IsNaN(Quantile(xs, 1.5)) {
		t.Error("out-of-range p should give NaN")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 10
	}
	f := func(pa, pb float64) bool {
		a := math.Mod(math.Abs(pa), 1)
		b := math.Mod(math.Abs(pb), 1)
		if a > b {
			a, b = b, a
		}
		return Quantile(xs, a) <= Quantile(xs, b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.N != 101 || s.Min != 0 || s.Max != 100 {
		t.Fatalf("Summary basics wrong: %+v", s)
	}
	if s.Median != 50 || s.P25 != 25 || s.P75 != 75 || s.P90 != 90 || s.P99 != 99 {
		t.Errorf("Summary quantiles wrong: %+v", s)
	}
	if s.Mean != 50 {
		t.Errorf("Summary mean = %g", s.Mean)
	}
	if Summarize(nil).N != 0 {
		t.Error("Summarize(nil) should have N=0")
	}
}

func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			if !math.IsNaN(r) && !math.IsInf(r, 0) {
				xs = append(xs, r)
			}
		}
		if len(xs) < 2 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.P25 && s.P25 <= s.Median &&
			s.Median <= s.P75 && s.P75 <= s.P90 &&
			s.P90 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
