package stats

import (
	"fmt"
	"math"
)

// FitExponential returns the MLE exponential distribution for xs
// (lambda = 1/mean). All observations must be positive.
func FitExponential(xs []float64) (Exponential, error) {
	if err := requirePositive(xs, "FitExponential"); err != nil {
		return Exponential{}, err
	}
	m := Mean(xs)
	if m <= 0 {
		return Exponential{}, fmt.Errorf("stats: FitExponential: non-positive mean %g", m)
	}
	return Exponential{Lambda: 1 / m}, nil
}

// FitLogNormal returns the MLE lognormal distribution for xs:
// mu and sigma are the mean and (biased MLE) stddev of ln(x).
func FitLogNormal(xs []float64) (LogNormal, error) {
	if err := requirePositive(xs, "FitLogNormal"); err != nil {
		return LogNormal{}, err
	}
	logs := make([]float64, len(xs))
	for i, x := range xs {
		logs[i] = math.Log(x)
	}
	mu := Mean(logs)
	ss := 0.0
	for _, l := range logs {
		d := l - mu
		ss += d * d
	}
	sigma := math.Sqrt(ss / float64(len(logs)))
	if sigma == 0 {
		sigma = math.SmallestNonzeroFloat64
	}
	return LogNormal{Mu: mu, Sigma: sigma}, nil
}

// FitNormal returns the MLE normal distribution for xs.
func FitNormal(xs []float64) (Normal, error) {
	if len(xs) < 2 {
		return Normal{}, fmt.Errorf("stats: FitNormal: need >= 2 observations, got %d", len(xs))
	}
	mu := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - mu
		ss += d * d
	}
	sigma := math.Sqrt(ss / float64(len(xs)))
	if sigma == 0 {
		sigma = math.SmallestNonzeroFloat64
	}
	return Normal{Mu: mu, Sigma: sigma}, nil
}

// FitUniform returns the MLE uniform distribution for xs ([min, max]).
func FitUniform(xs []float64) (Uniform, error) {
	if len(xs) == 0 {
		return Uniform{}, fmt.Errorf("stats: FitUniform: empty sample")
	}
	lo, hi := Min(xs), Max(xs)
	if hi <= lo {
		hi = lo + math.SmallestNonzeroFloat64
	}
	return Uniform{A: lo, B: hi}, nil
}

// FitWeibull returns the MLE Weibull distribution for xs. The shape k is
// found by Newton iteration on the profile-likelihood score equation
//
//	Σ x^k ln x / Σ x^k − 1/k − mean(ln x) = 0
//
// with a bisection fallback; the scale then follows in closed form.
func FitWeibull(xs []float64) (Weibull, error) {
	if err := requirePositive(xs, "FitWeibull"); err != nil {
		return Weibull{}, err
	}
	n := float64(len(xs))
	logs := make([]float64, len(xs))
	meanLog := 0.0
	for i, x := range xs {
		logs[i] = math.Log(x)
		meanLog += logs[i]
	}
	meanLog /= n

	// x^k = exp(k·ln x) with cached logs: the score is evaluated several
	// times on potentially hundreds of thousands of points. One fused pass
	// yields the score and its derivative: with S_j = Σ (ln x)^j · x^k,
	//
	//	g(k)  = S1/S0 − 1/k − mean(ln x)
	//	g'(k) = (S2·S0 − S1²)/S0² + 1/k²
	eval := func(k float64) (g, dg float64) {
		var s0, s1, s2 float64
		for _, l := range logs {
			w := math.Exp(k * l)
			s0 += w
			wl := w * l
			s1 += wl
			s2 += wl * l
		}
		return s1/s0 - 1/k - meanLog, (s2*s0-s1*s1)/(s0*s0) + 1/(k*k)
	}
	score := func(k float64) float64 {
		g, _ := eval(k)
		return g
	}

	// Initial guess from the method of moments on ln(x):
	// Var(ln X) = π²/(6k²).
	varLog := 0.0
	for _, l := range logs {
		d := l - meanLog
		varLog += d * d
	}
	varLog /= n
	k := 1.0
	if varLog > 0 {
		k = math.Pi / math.Sqrt(6*varLog)
	}
	k = clamp(k, 1e-3, 1e3)

	// The score is increasing in k: −1/k dominates as k→0⁺ (score→−∞) and
	// the weighted-log term tends to max ln x > mean ln x as k→∞. Bracket
	// the unique root, then refine.
	// Each score() call is a full pass over the sample; carry the last
	// value at each endpoint instead of re-evaluating it for the final
	// bracket check (the guess itself is evaluated once, not twice, when
	// it already brackets on one side).
	lo, hi := k, k
	gLo := score(lo)
	for i := 0; i < 80 && gLo > 0; i++ {
		lo /= 2
		gLo = score(lo)
		if lo < 1e-8 {
			break
		}
	}
	gHi := gLo
	if hi != lo {
		gHi = score(hi)
	}
	for i := 0; i < 80 && gHi < 0; i++ {
		hi *= 2
		gHi = score(hi)
		if hi > 1e8 {
			break
		}
	}
	if gLo > 0 || gHi < 0 {
		return Weibull{}, fmt.Errorf("stats: FitWeibull: %w (score not bracketed)", ErrConverge)
	}
	// Safeguarded Newton inside the bracket: quadratic convergence from
	// the moment guess (typically 5–8 fused passes instead of ~40 plain
	// bisection passes), falling back to a bisection step whenever the
	// Newton step leaves the bracket.
	k = clamp(k, lo, hi)
	for i := 0; i < 100; i++ {
		g, dg := eval(k)
		if g == 0 {
			break
		}
		if g < 0 {
			lo = k
		} else {
			hi = k
		}
		next := k - g/dg
		if !(dg > 0) || next <= lo || next >= hi {
			next = (lo + hi) / 2
		}
		done := math.Abs(next-k) <= 1e-12*k || (hi-lo) <= 1e-10*lo
		k = next
		if done {
			break
		}
	}

	sw := 0.0
	for _, l := range logs {
		sw += math.Exp(k * l)
	}
	lambda := math.Pow(sw/n, 1/k)
	return Weibull{K: k, Lambda: lambda}, nil
}

// FitGamma returns the MLE gamma distribution for xs. The shape k starts
// from the Minka closed-form approximation and is refined by Newton steps
// on the score equation ln k − ψ(k) = s, where s = ln(mean) − mean(ln x);
// the scale then follows in closed form.
func FitGamma(xs []float64) (Gamma, error) {
	if err := requirePositive(xs, "FitGamma"); err != nil {
		return Gamma{}, err
	}
	m := Mean(xs)
	meanLog := 0.0
	for _, x := range xs {
		meanLog += math.Log(x)
	}
	meanLog /= float64(len(xs))
	s := math.Log(m) - meanLog
	if s <= 0 {
		// Degenerate (all observations equal): huge shape, tiny scale.
		return Gamma{K: 1e6, Theta: m / 1e6}, nil
	}
	k := (3 - s + math.Sqrt((s-3)*(s-3)+24*s)) / (12 * s)
	k = clamp(k, 1e-6, 1e8)
	for i := 0; i < 100; i++ {
		f := math.Log(k) - Digamma(k) - s
		d := 1/k - Trigamma(k)
		if d == 0 {
			break
		}
		nk := k - f/d
		if nk <= 0 {
			nk = k / 2
		}
		if math.Abs(nk-k) < 1e-12*k {
			k = nk
			break
		}
		k = nk
	}
	return Gamma{K: k, Theta: m / k}, nil
}

func requirePositive(xs []float64, fn string) error {
	if len(xs) < 2 {
		return fmt.Errorf("stats: %s: need >= 2 observations, got %d", fn, len(xs))
	}
	for i, x := range xs {
		if !(x > 0) || math.IsInf(x, 1) {
			return fmt.Errorf("stats: %s: observation %d = %g is not positive finite", fn, i, x)
		}
	}
	return nil
}

func clamp(x, lo, hi float64) float64 {
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	default:
		return x
	}
}
