package stats

import (
	"math"
	"math/rand"
)

// Dist is a univariate probability distribution. All dcfail distributions
// implement it, which lets fitting, testing, and plotting code stay
// agnostic of the concrete family.
type Dist interface {
	// PDF returns the probability density at x.
	PDF(x float64) float64
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Quantile returns the inverse CDF at p in (0, 1).
	Quantile(p float64) float64
	// Mean returns the distribution mean (may be +Inf).
	Mean() float64
	// Rand draws one variate using rng.
	Rand(rng *rand.Rand) float64
	// NumParams returns the number of fitted parameters, used to set the
	// degrees of freedom in goodness-of-fit tests.
	NumParams() int
	// Name returns the family name, e.g. "weibull".
	Name() string
}

// --- Uniform ---

// Uniform is the continuous uniform distribution on [A, B].
type Uniform struct {
	A, B float64
}

func (u Uniform) Name() string   { return "uniform" }
func (u Uniform) NumParams() int { return 2 }
func (u Uniform) Mean() float64  { return (u.A + u.B) / 2 }

func (u Uniform) PDF(x float64) float64 {
	if x < u.A || x > u.B || u.B <= u.A {
		return 0
	}
	return 1 / (u.B - u.A)
}

func (u Uniform) CDF(x float64) float64 {
	switch {
	case x <= u.A:
		return 0
	case x >= u.B:
		return 1
	default:
		return (x - u.A) / (u.B - u.A)
	}
}

func (u Uniform) Quantile(p float64) float64 {
	if p < 0 || p > 1 {
		return math.NaN()
	}
	return u.A + p*(u.B-u.A)
}

func (u Uniform) Rand(rng *rand.Rand) float64 {
	return u.A + rng.Float64()*(u.B-u.A)
}

// --- Exponential ---

// Exponential is the exponential distribution with rate Lambda > 0.
type Exponential struct {
	Lambda float64
}

func (e Exponential) Name() string   { return "exponential" }
func (e Exponential) NumParams() int { return 1 }
func (e Exponential) Mean() float64  { return 1 / e.Lambda }

func (e Exponential) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return e.Lambda * math.Exp(-e.Lambda*x)
}

func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-e.Lambda * x)
}

func (e Exponential) Quantile(p float64) float64 {
	if p < 0 || p >= 1 {
		if p == 1 {
			return math.Inf(1)
		}
		return math.NaN()
	}
	return -math.Log1p(-p) / e.Lambda
}

func (e Exponential) Rand(rng *rand.Rand) float64 {
	return rng.ExpFloat64() / e.Lambda
}

func (e Exponential) logPDF() func(float64) float64 {
	logL := math.Log(e.Lambda)
	return func(x float64) float64 {
		if x < 0 {
			return math.Inf(-1)
		}
		return logL - e.Lambda*x
	}
}

// --- Weibull ---

// Weibull is the Weibull distribution with shape K > 0 and scale Lambda > 0.
// K < 1 gives a decreasing hazard (infant mortality), K > 1 an increasing
// hazard (wear-out) — the two regimes of the bathtub curve.
type Weibull struct {
	K, Lambda float64
}

func (w Weibull) Name() string   { return "weibull" }
func (w Weibull) NumParams() int { return 2 }

func (w Weibull) Mean() float64 {
	lg, _ := math.Lgamma(1 + 1/w.K)
	return w.Lambda * math.Exp(lg)
}

func (w Weibull) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		if w.K == 1 {
			return 1 / w.Lambda
		}
		if w.K < 1 {
			return math.Inf(1)
		}
		return 0
	}
	z := x / w.Lambda
	return (w.K / w.Lambda) * math.Pow(z, w.K-1) * math.Exp(-math.Pow(z, w.K))
}

func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(x/w.Lambda, w.K))
}

func (w Weibull) Quantile(p float64) float64 {
	if p < 0 || p >= 1 {
		if p == 1 {
			return math.Inf(1)
		}
		return math.NaN()
	}
	return w.Lambda * math.Pow(-math.Log1p(-p), 1/w.K)
}

func (w Weibull) Rand(rng *rand.Rand) float64 {
	return w.Lambda * math.Pow(rng.ExpFloat64(), 1/w.K)
}

func (w Weibull) logPDF() func(float64) float64 {
	logHead := math.Log(w.K) - math.Log(w.Lambda)
	return func(x float64) float64 {
		if x < 0 {
			return math.Inf(-1)
		}
		if x == 0 {
			switch {
			case w.K == 1:
				return -math.Log(w.Lambda)
			case w.K < 1:
				return math.Inf(1)
			}
			return math.Inf(-1)
		}
		logZ := math.Log(x / w.Lambda)
		return logHead + (w.K-1)*logZ - math.Exp(w.K*logZ)
	}
}

// Hazard returns the Weibull hazard rate at x >= 0.
func (w Weibull) Hazard(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		x = math.SmallestNonzeroFloat64
	}
	return (w.K / w.Lambda) * math.Pow(x/w.Lambda, w.K-1)
}

// --- Gamma ---

// Gamma is the gamma distribution with shape K > 0 and scale Theta > 0.
type Gamma struct {
	K, Theta float64
}

func (g Gamma) Name() string   { return "gamma" }
func (g Gamma) NumParams() int { return 2 }
func (g Gamma) Mean() float64  { return g.K * g.Theta }

func (g Gamma) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		if g.K == 1 {
			return 1 / g.Theta
		}
		if g.K < 1 {
			return math.Inf(1)
		}
		return 0
	}
	lg, _ := math.Lgamma(g.K)
	return math.Exp((g.K-1)*math.Log(x) - x/g.Theta - lg - g.K*math.Log(g.Theta))
}

func (g Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return GammaRegP(g.K, x/g.Theta)
}

func (g Gamma) logPDF() func(float64) float64 {
	lg, _ := math.Lgamma(g.K)
	head := -lg - g.K*math.Log(g.Theta)
	return func(x float64) float64 {
		if x < 0 {
			return math.Inf(-1)
		}
		if x == 0 {
			switch {
			case g.K == 1:
				return -math.Log(g.Theta)
			case g.K < 1:
				return math.Inf(1)
			}
			return math.Inf(-1)
		}
		return head + (g.K-1)*math.Log(x) - x/g.Theta
	}
}

// Quantile inverts the CDF by Newton iteration from a Wilson–Hilferty
// starting point, falling back to bisection when Newton leaves (0, ∞).
func (g Gamma) Quantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		switch p {
		case 0:
			return 0
		case 1:
			return math.Inf(1)
		}
		return math.NaN()
	}
	// Wilson–Hilferty approximation for the initial guess.
	z := NormQuantile(p)
	c := 1 - 1/(9*g.K) + z/(3*math.Sqrt(g.K))
	x := g.K * c * c * c
	if x <= 0 {
		x = g.K * math.Exp(z/math.Sqrt(g.K))
	}
	x *= g.Theta
	for i := 0; i < 60; i++ {
		f := g.CDF(x) - p
		d := g.PDF(x)
		if d <= 0 {
			break
		}
		step := f / d
		nx := x - step
		if nx <= 0 {
			nx = x / 2
		}
		if math.Abs(nx-x) <= 1e-12*math.Max(1, x) {
			return nx
		}
		x = nx
	}
	return x
}

// Rand draws a gamma variate using the Marsaglia–Tsang method.
func (g Gamma) Rand(rng *rand.Rand) float64 {
	k := g.K
	boost := 1.0
	if k < 1 {
		// Boost: draw Gamma(k+1) and scale by U^{1/k}.
		boost = math.Pow(rng.Float64(), 1/k)
		k++
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return boost * d * v * g.Theta
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return boost * d * v * g.Theta
		}
	}
}

// --- LogNormal ---

// LogNormal is the lognormal distribution: ln X ~ Normal(Mu, Sigma²).
type LogNormal struct {
	Mu, Sigma float64
}

func (l LogNormal) Name() string   { return "lognormal" }
func (l LogNormal) NumParams() int { return 2 }
func (l LogNormal) Mean() float64  { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

func (l LogNormal) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := (math.Log(x) - l.Mu) / l.Sigma
	return math.Exp(-z*z/2) / (x * l.Sigma * math.Sqrt(2*math.Pi))
}

func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := (math.Log(x) - l.Mu) / (l.Sigma * math.Sqrt2)
	return 0.5 * math.Erfc(-z)
}

func (l LogNormal) Quantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		switch p {
		case 0:
			return 0
		case 1:
			return math.Inf(1)
		}
		return math.NaN()
	}
	return math.Exp(l.Mu + l.Sigma*NormQuantile(p))
}

func (l LogNormal) Rand(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

func (l LogNormal) logPDF() func(float64) float64 {
	head := -math.Log(l.Sigma * math.Sqrt(2*math.Pi))
	return func(x float64) float64 {
		if x <= 0 {
			return math.Inf(-1)
		}
		logX := math.Log(x)
		z := (logX - l.Mu) / l.Sigma
		return head - z*z/2 - logX
	}
}

// --- Normal ---

// Normal is the normal distribution with mean Mu and stddev Sigma > 0.
type Normal struct {
	Mu, Sigma float64
}

func (n Normal) Name() string   { return "normal" }
func (n Normal) NumParams() int { return 2 }
func (n Normal) Mean() float64  { return n.Mu }

func (n Normal) PDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-z*z/2) / (n.Sigma * math.Sqrt(2*math.Pi))
}

func (n Normal) CDF(x float64) float64 {
	z := (x - n.Mu) / (n.Sigma * math.Sqrt2)
	return 0.5 * math.Erfc(-z)
}

func (n Normal) Quantile(p float64) float64 {
	return n.Mu + n.Sigma*NormQuantile(p)
}

func (n Normal) Rand(rng *rand.Rand) float64 {
	return n.Mu + n.Sigma*rng.NormFloat64()
}

// --- Pareto ---

// Pareto is the Pareto (type I) distribution with scale Xm > 0 and shape
// Alpha > 0. Used for heavy-tailed server frailty (Fig. 7 skew).
type Pareto struct {
	Xm, Alpha float64
}

func (p Pareto) Name() string   { return "pareto" }
func (p Pareto) NumParams() int { return 2 }

func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

func (p Pareto) PDF(x float64) float64 {
	if x < p.Xm {
		return 0
	}
	return p.Alpha * math.Pow(p.Xm, p.Alpha) / math.Pow(x, p.Alpha+1)
}

func (p Pareto) CDF(x float64) float64 {
	if x < p.Xm {
		return 0
	}
	return 1 - math.Pow(p.Xm/x, p.Alpha)
}

func (p Pareto) Quantile(q float64) float64 {
	if q < 0 || q >= 1 {
		if q == 1 {
			return math.Inf(1)
		}
		return math.NaN()
	}
	return p.Xm / math.Pow(1-q, 1/p.Alpha)
}

func (p Pareto) Rand(rng *rand.Rand) float64 {
	return p.Xm * math.Pow(rng.Float64(), -1/p.Alpha)
}

// PoissonRand draws a Poisson(mean) variate. For small means it uses
// Knuth's product method; for large means a normal approximation with
// continuity correction, which is ample for simulation workloads.
func PoissonRand(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := mean + math.Sqrt(mean)*rng.NormFloat64() + 0.5
	if n < 0 {
		return 0
	}
	return int(n)
}
