package stats

import (
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h, err := NewHistogram([]float64{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{-1, 0, 0.5, 1, 1.5, 2.9, 3, 99})
	want := []int{3, 2, 3}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d (counts %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if h.Total() != 8 {
		t.Errorf("total = %d", h.Total())
	}
	fr := h.Fractions()
	if !almostEqual(fr[0]+fr[1]+fr[2], 1, 1e-12) {
		t.Errorf("fractions don't sum to 1: %v", fr)
	}
}

func TestHistogramEdgeValidation(t *testing.T) {
	if _, err := NewHistogram([]float64{1}); err == nil {
		t.Error("single edge should fail")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Error("equal edges should fail")
	}
	if _, err := NewHistogram([]float64{2, 1}); err == nil {
		t.Error("decreasing edges should fail")
	}
}

func TestHistogramCopiesEdges(t *testing.T) {
	edges := []float64{0, 1, 2}
	h, err := NewHistogram(edges)
	if err != nil {
		t.Fatal(err)
	}
	edges[0] = -100
	if h.Edges[0] != 0 {
		t.Error("histogram aliased caller's edges")
	}
}

func TestUniformEdges(t *testing.T) {
	e := UniformEdges(0, 10, 5)
	want := []float64{0, 2, 4, 6, 8, 10}
	if len(e) != len(want) {
		t.Fatalf("len = %d", len(e))
	}
	for i := range want {
		if !almostEqual(e[i], want[i], 1e-12) {
			t.Errorf("edge %d = %g, want %g", i, e[i], want[i])
		}
	}
}

func TestHistogramConservesMassProperty(t *testing.T) {
	h, err := NewHistogram(UniformEdges(-5, 5, 10))
	if err != nil {
		t.Fatal(err)
	}
	f := func(xs []float64) bool {
		before := h.Total()
		n := 0
		for _, x := range xs {
			if x == x { // skip NaN
				h.Add(x)
				n++
			}
		}
		sum := 0
		for _, c := range h.Counts {
			sum += c
		}
		return h.Total() == before+n && sum == h.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramExpected(t *testing.T) {
	h, err := NewHistogram(UniformEdges(0, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		h.Add(float64(i%4) + 0.5)
	}
	exp := h.Expected(Uniform{A: 0, B: 4})
	sum := 0.0
	for _, e := range exp {
		sum += e
		if !almostEqual(e, 250, 1e-9) {
			t.Errorf("expected bin = %g, want 250", e)
		}
	}
	if !almostEqual(sum, 1000, 1e-9) {
		t.Errorf("expected total = %g", sum)
	}
	// Tail mass folds into boundary bins.
	exp2 := h.Expected(Normal{Mu: 2, Sigma: 10})
	sum2 := 0.0
	for _, e := range exp2 {
		sum2 += e
	}
	if !almostEqual(sum2, 1000, 1e-6) {
		t.Errorf("tail-folded total = %g", sum2)
	}
}
