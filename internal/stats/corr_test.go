package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestPearsonRPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := PearsonR(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Errorf("r = %g, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = PearsonR(xs, neg)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, -1, 1e-12) {
		t.Errorf("r = %g, want -1", r)
	}
}

func TestPearsonRIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 5000)
	ys := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64()
	}
	r, err := PearsonR(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r) > 0.05 {
		t.Errorf("independent samples r = %g", r)
	}
}

func TestPearsonRErrors(t *testing.T) {
	if _, err := PearsonR([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PearsonR([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("too-small sample accepted")
	}
	if _, err := PearsonR([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("zero variance accepted")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any monotone transform gives rho = 1, even when Pearson would not.
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x) // wildly nonlinear but monotone
	}
	rho, err := SpearmanRho(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(rho, 1, 1e-12) {
		t.Errorf("rho = %g, want 1", rho)
	}
}

func TestSpearmanAntiCorrelated(t *testing.T) {
	xs := []float64{5, 3, 9, 1, 7}
	ys := []float64{-5, -3, -9, -1, -7}
	rho, err := SpearmanRho(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(rho, -1, 1e-12) {
		t.Errorf("rho = %g, want -1", rho)
	}
}

func TestRanksWithTies(t *testing.T) {
	got := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ranks[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}
