package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestGammaRegPKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^{-x}; P(0.5, x) = erf(sqrt(x)).
	cases := []struct {
		a, x, want float64
	}{
		{1, 0, 0},
		{1, 1, 1 - math.Exp(-1)},
		{1, 5, 1 - math.Exp(-5)},
		{0.5, 0.25, math.Erf(0.5)},
		{0.5, 4, math.Erf(2)},
		{3, 2.5, 0.45618688}, // reference value
		{10, 10, 0.54207029}, // reference value
	}
	for _, c := range cases {
		got := GammaRegP(c.a, c.x)
		if !almostEqual(got, c.want, 1e-6) {
			t.Errorf("GammaRegP(%g, %g) = %.8f, want %.8f", c.a, c.x, got, c.want)
		}
	}
}

func TestGammaRegComplement(t *testing.T) {
	f := func(a, x float64) bool {
		a = 0.1 + math.Mod(math.Abs(a), 50)
		x = math.Mod(math.Abs(x), 100)
		p := GammaRegP(a, x)
		q := GammaRegQ(a, x)
		return almostEqual(p+q, 1, 1e-9) && p >= 0 && p <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGammaRegPMonotone(t *testing.T) {
	for _, a := range []float64{0.3, 1, 2.7, 15} {
		prev := -1.0
		for x := 0.0; x < 60; x += 0.5 {
			p := GammaRegP(a, x)
			if p < prev-1e-12 {
				t.Fatalf("GammaRegP(%g, ·) not monotone at x=%g: %g < %g", a, x, p, prev)
			}
			prev = p
		}
	}
}

func TestGammaRegPInvalid(t *testing.T) {
	if !math.IsNaN(GammaRegP(-1, 2)) {
		t.Error("GammaRegP(-1, 2) should be NaN")
	}
	if !math.IsNaN(GammaRegQ(0, 2)) {
		t.Error("GammaRegQ(0, 2) should be NaN")
	}
	if got := GammaRegP(2, -5); got != 0 {
		t.Errorf("GammaRegP(2, -5) = %g, want 0", got)
	}
	if got := GammaRegQ(2, -5); got != 1 {
		t.Errorf("GammaRegQ(2, -5) = %g, want 1", got)
	}
}

func TestDigammaKnownValues(t *testing.T) {
	const gammaEuler = 0.57721566490153286
	cases := []struct {
		x, want float64
	}{
		{1, -gammaEuler},
		{2, 1 - gammaEuler},
		{3, 1.5 - gammaEuler},
		{0.5, -gammaEuler - 2*math.Ln2},
		{10, 2.25175258906672111},
	}
	for _, c := range cases {
		if got := Digamma(c.x); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Digamma(%g) = %.12f, want %.12f", c.x, got, c.want)
		}
	}
}

func TestDigammaRecurrence(t *testing.T) {
	// ψ(x+1) = ψ(x) + 1/x for all x > 0.
	f := func(raw float64) bool {
		x := 0.05 + math.Mod(math.Abs(raw), 30)
		return almostEqual(Digamma(x+1), Digamma(x)+1/x, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrigammaKnownValues(t *testing.T) {
	cases := []struct {
		x, want float64
	}{
		{1, math.Pi * math.Pi / 6},
		{0.5, math.Pi * math.Pi / 2},
		{2, math.Pi*math.Pi/6 - 1},
	}
	for _, c := range cases {
		if got := Trigamma(c.x); !almostEqual(got, c.want, 1e-8) {
			t.Errorf("Trigamma(%g) = %.12f, want %.12f", c.x, got, c.want)
		}
	}
}

func TestNormQuantileKnownValues(t *testing.T) {
	cases := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.84134474606854293, 1}, // Phi(1)
		{0.99, 2.3263478740408408},
	}
	for _, c := range cases {
		if got := NormQuantile(c.p); !almostEqual(got, c.want, 1e-8) {
			t.Errorf("NormQuantile(%g) = %.10f, want %.10f", c.p, got, c.want)
		}
	}
}

func TestNormQuantileRoundTrip(t *testing.T) {
	n := Normal{Mu: 0, Sigma: 1}
	f := func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 0.998) + 0.001
		return almostEqual(n.CDF(NormQuantile(p)), p, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormQuantileEdges(t *testing.T) {
	if !math.IsInf(NormQuantile(0), -1) {
		t.Error("NormQuantile(0) should be -Inf")
	}
	if !math.IsInf(NormQuantile(1), 1) {
		t.Error("NormQuantile(1) should be +Inf")
	}
	if !math.IsNaN(NormQuantile(-0.1)) || !math.IsNaN(NormQuantile(1.1)) {
		t.Error("NormQuantile outside [0,1] should be NaN")
	}
}
