package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{3, 1, 2, 2})
	if e.N() != 4 {
		t.Fatalf("N = %d", e.N())
	}
	cases := []struct {
		x, want float64
	}{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); got != c.want {
			t.Errorf("At(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if !math.IsNaN(e.At(1)) || !math.IsNaN(e.Quantile(0.5)) {
		t.Error("empty ECDF should return NaN")
	}
	if pts := e.Points(10); pts != nil {
		t.Error("empty ECDF Points should be nil")
	}
}

func TestECDFDoesNotAliasInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	e := NewECDF(xs)
	xs[0] = -100
	if got := e.At(0); got != 0 {
		t.Error("ECDF aliased caller's slice")
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	xs := []float64{5, 3, 8, 1, 9, 2, 2, 7}
	e := NewECDF(xs)
	f := func(ra, rb float64) bool {
		a := math.Mod(ra, 20)
		b := math.Mod(rb, 20)
		if a > b {
			a, b = b, a
		}
		return e.At(a) <= e.At(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestECDFPoints(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	pts := e100Points(xs, 10)
	if len(pts) != 10 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].X != 0 || pts[len(pts)-1].X != 99 {
		t.Errorf("endpoints wrong: %v %v", pts[0], pts[len(pts)-1])
	}
	if pts[len(pts)-1].Y != 1 {
		t.Errorf("final Y = %g, want 1", pts[len(pts)-1].Y)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
			t.Fatalf("points not monotone at %d", i)
		}
	}
	// Request more points than the sample has.
	small := NewECDF([]float64{1, 2})
	if got := small.Points(10); len(got) != 2 {
		t.Errorf("oversampled points = %d, want 2", len(got))
	}
}

func e100Points(xs []float64, n int) []Point {
	return NewECDF(xs).Points(n)
}

func TestKSDistanceZeroForPerfectFit(t *testing.T) {
	// ECDF of a large sample from the distribution should have small KS.
	truth := Weibull{K: 2, Lambda: 1}
	xs := sample(truth, 20000, 31)
	d := NewECDF(xs).KSDistance(truth)
	if d > 0.02 {
		t.Errorf("KS = %g, want small", d)
	}
	// And a clearly wrong distribution should have a large distance.
	wrong := Exponential{Lambda: 5}
	if dw := NewECDF(xs).KSDistance(wrong); dw < 0.2 {
		t.Errorf("wrong-dist KS = %g, want large", dw)
	}
}

func TestQuantileEdgesCollapseTies(t *testing.T) {
	xs := []float64{1, 1, 1, 1, 1, 2, 3, 4, 5, 6}
	edges := QuantileEdges(xs, 10)
	if edges == nil {
		t.Fatal("nil edges")
	}
	if !sort.Float64sAreSorted(edges) {
		t.Error("edges not sorted")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] == edges[i-1] {
			t.Error("duplicate edges not collapsed")
		}
	}
}
