package stats

import (
	"math"
	"math/rand"
	"testing"
)

// The large-sample fast paths — branch-and-bound KS, sorted-sample
// goodness-of-fit binning, and closed-form log-densities — must agree
// with the plain per-point definitions they replace.

func fastPathSamples(t *testing.T) map[string][]float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	out := make(map[string][]float64)
	draw := func(name string, d Dist, n int) {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = d.Rand(rng)
		}
		out[name] = xs
	}
	// Sizes straddle the KS fast-path threshold; families are deliberately
	// cross-matched against the fitted distributions below.
	draw("exp", Exponential{Lambda: 0.4}, 5000)
	draw("weibull", Weibull{K: 0.7, Lambda: 30}, 9001)
	draw("gamma", Gamma{K: 2.5, Theta: 12}, 4096)
	draw("lognormal", LogNormal{Mu: 2, Sigma: 1.3}, 1500)
	return out
}

// ksPlainScan is the reference O(n) KS statistic over a sorted sample.
func ksPlainScan(sorted []float64, dist Dist) float64 {
	n := len(sorted)
	d := 0.0
	for i, x := range sorted {
		f := dist.CDF(x)
		if lo := math.Abs(f - float64(i)/float64(n)); lo > d {
			d = lo
		}
		if hi := math.Abs(float64(i+1)/float64(n) - f); hi > d {
			d = hi
		}
	}
	return d
}

func TestKSDistanceMatchesPlainScan(t *testing.T) {
	for name, xs := range fastPathSamples(t) {
		ec := NewECDF(xs)
		for _, r := range FitAll(xs, 20) {
			if r.Err != nil {
				continue
			}
			got := ec.KSDistance(r.Dist)
			want := ksPlainScan(ec.sorted, r.Dist)
			if got != want {
				t.Errorf("%s vs %s: KSDistance = %v, plain scan = %v", name, r.Dist.Name(), got, want)
			}
		}
	}
}

func TestSortedGoodnessOfFitMatchesPerPoint(t *testing.T) {
	for name, xs := range fastPathSamples(t) {
		ec := NewECDF(xs)
		for _, r := range FitAll(xs, 20) {
			if r.Err != nil {
				continue
			}
			got, gotErr := ec.GoodnessOfFit(r.Dist, 20)
			want, wantErr := GoodnessOfFit(xs, r.Dist, 20)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("%s vs %s: error mismatch: %v / %v", name, r.Dist.Name(), gotErr, wantErr)
			}
			if gotErr != nil {
				continue
			}
			if got != want {
				t.Errorf("%s vs %s: sorted GoF = %+v, per-point GoF = %+v", name, r.Dist.Name(), got, want)
			}
		}
	}
}

func TestLogPDFMatchesLogOfPDF(t *testing.T) {
	dists := []Dist{
		Exponential{Lambda: 0.03},
		Weibull{K: 0.8, Lambda: 45},
		Weibull{K: 2.2, Lambda: 45},
		Gamma{K: 0.6, Theta: 80},
		Gamma{K: 3, Theta: 80},
		LogNormal{Mu: 3, Sigma: 2},
	}
	points := []float64{0, 1e-9, 0.017, 1, 33.4, 1200, 1e7}
	for _, d := range dists {
		lp := d.(logPDFer).logPDF()
		for _, x := range points {
			got := lp(x)
			want := math.Log(d.PDF(x))
			switch {
			case math.IsInf(want, -1) || math.IsInf(got, -1):
				// PDF underflows to 0 deep in the tail where the closed
				// form still resolves the (hugely negative) log-density;
				// both rank the family last, so only require agreement on
				// "vanishingly unlikely".
				if !math.IsInf(got, -1) && !(math.IsInf(want, -1) && got < -700) {
					t.Errorf("%s at %g: logPDF = %v, log(PDF) = %v", d.Name(), x, got, want)
				}
				if math.IsInf(got, -1) && !math.IsInf(want, -1) {
					t.Errorf("%s at %g: logPDF = -Inf but log(PDF) = %v", d.Name(), x, want)
				}
			case math.IsInf(want, 1) || math.IsInf(got, 1):
				if !math.IsInf(got, 1) || !math.IsInf(want, 1) {
					t.Errorf("%s at %g: logPDF = %v, log(PDF) = %v", d.Name(), x, got, want)
				}
			default:
				if diff := math.Abs(got - want); diff > 1e-9*math.Max(1, math.Abs(want)) {
					t.Errorf("%s at %g: logPDF = %v, log(PDF) = %v (diff %g)", d.Name(), x, got, want, diff)
				}
			}
		}
	}
}
