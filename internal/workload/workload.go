// Package workload models when failures get *detected*. The paper's key
// temporal observation (Hypotheses 1–2) is that failure counts are not
// uniform across hours of the day or days of the week, and its explanation
// is that log-based detectors only notice a fault once the workload
// exercises the component, while manually filed tickets need a human at a
// desk. This package provides per-product-line utilization profiles and a
// sampler that places detection timestamps according to them.
package workload

import (
	"fmt"
	"math/rand"
	"time"
)

// Profile is a weekly/diurnal detection-weight profile. Weights are
// relative: both the hourly and the daily arrays are normalized to mean 1,
// so a flat profile is all ones. The weight at an instant is the product
// of its day-of-week and hour-of-day weights.
type Profile struct {
	Name string
	// Hour holds hour-of-day weights, index 0 = midnight–1am local study
	// time (the trace uses a single timezone, as one operator region).
	Hour [24]float64
	// Day holds day-of-week weights, index 0 = Sunday (time.Weekday).
	Day [7]float64
}

// Weight returns the detection weight at time t (product of day and hour
// weights; mean over a full week is 1).
func (p *Profile) Weight(t time.Time) float64 {
	return p.Day[int(t.Weekday())] * p.Hour[t.Hour()]
}

// MaxWeight returns the largest instantaneous weight, the rejection bound
// used by SampleTime.
func (p *Profile) MaxWeight() float64 {
	maxH, maxD := 0.0, 0.0
	for _, w := range p.Hour {
		if w > maxH {
			maxH = w
		}
	}
	for _, w := range p.Day {
		if w > maxD {
			maxD = w
		}
	}
	return maxH * maxD
}

// SampleTime draws a timestamp in [lo, hi) with density proportional to
// the profile weight, by rejection sampling against a uniform proposal.
func (p *Profile) SampleTime(rng *rand.Rand, lo, hi time.Time) time.Time {
	span := hi.Sub(lo)
	if span <= 0 {
		return lo
	}
	bound := p.MaxWeight()
	if bound <= 0 {
		return lo.Add(time.Duration(rng.Int63n(int64(span))))
	}
	for i := 0; i < 4096; i++ {
		t := lo.Add(time.Duration(rng.Int63n(int64(span))))
		if rng.Float64()*bound <= p.Weight(t) {
			return t
		}
	}
	// Pathological profile (nearly all-zero): fall back to uniform.
	return lo.Add(time.Duration(rng.Int63n(int64(span))))
}

// Validate reports profile violations.
func (p *Profile) Validate() error {
	sumH, sumD := 0.0, 0.0
	for _, w := range p.Hour {
		if w < 0 {
			return fmt.Errorf("workload: %s has negative hour weight", p.Name)
		}
		sumH += w
	}
	for _, w := range p.Day {
		if w < 0 {
			return fmt.Errorf("workload: %s has negative day weight", p.Name)
		}
		sumD += w
	}
	if sumH == 0 || sumD == 0 {
		return fmt.Errorf("workload: %s has all-zero weights", p.Name)
	}
	return nil
}

// Named profiles.
const (
	// Online is a user-facing service: strong daytime peak, busier
	// weekdays.
	Online = "online"
	// Batch is a Hadoop-style line: jobs run around the clock with an
	// overnight bias.
	Batch = "batch"
	// Mixed blends the two.
	Mixed = "mixed"
	// Human is manual detection: office hours, working days — drives the
	// miscellaneous class (Fig. 4h).
	Human = "human"
	// Flat is the uniform profile used by the no-workload-gate ablation.
	Flat = "flat"
)

// ByName returns a copy of the named profile. Unknown names return the
// flat profile, so ablations can safely pass arbitrary strings.
func ByName(name string) Profile {
	if p, ok := profiles[name]; ok {
		return p
	}
	return profiles[Flat]
}

// Names returns the catalogue of profile names.
func Names() []string {
	return []string{Online, Batch, Mixed, Human, Flat}
}

var profiles = buildProfiles()

func buildProfiles() map[string]Profile {
	out := make(map[string]Profile, 5)

	online := Profile{Name: Online}
	for h := 0; h < 24; h++ {
		switch {
		case h >= 2 && h < 7:
			online.Hour[h] = 0.40
		case h >= 7 && h < 10:
			online.Hour[h] = 1.00
		case h >= 10 && h < 23:
			online.Hour[h] = 1.45
		default:
			online.Hour[h] = 0.75
		}
	}
	// Weekdays are not flat either: Monday carries the weekend backlog
	// and activity tapers towards Friday — the reason the paper's
	// Hypothesis 1 is rejected even with weekends excluded.
	online.Day = [7]float64{0.76, 1.20, 1.13, 1.10, 1.06, 0.99, 0.72}

	batch := Profile{Name: Batch}
	for h := 0; h < 24; h++ {
		switch {
		case h >= 22 || h < 6: // overnight job window
			batch.Hour[h] = 1.35
		case h >= 9 && h < 18:
			batch.Hour[h] = 0.85
		default:
			batch.Hour[h] = 1.00
		}
	}
	batch.Day = [7]float64{0.92, 1.12, 1.06, 1.03, 1.00, 0.96, 0.91}

	mixed := Profile{Name: Mixed}
	for h := 0; h < 24; h++ {
		mixed.Hour[h] = (online.Hour[h] + batch.Hour[h]) / 2
	}
	for d := 0; d < 7; d++ {
		mixed.Day[d] = (online.Day[d] + batch.Day[d]) / 2
	}

	human := Profile{Name: Human}
	for h := 0; h < 24; h++ {
		switch {
		case h >= 9 && h < 12:
			human.Hour[h] = 3.4
		case h >= 14 && h < 19:
			human.Hour[h] = 3.0
		case h >= 12 && h < 14:
			human.Hour[h] = 1.6
		case h >= 19 && h < 22:
			human.Hour[h] = 0.9
		default:
			human.Hour[h] = 0.12
		}
	}
	human.Day = [7]float64{0.22, 1.66, 1.48, 1.38, 1.28, 1.05, 0.33}

	flat := Profile{Name: Flat}
	for h := 0; h < 24; h++ {
		flat.Hour[h] = 1
	}
	for d := 0; d < 7; d++ {
		flat.Day[d] = 1
	}

	for _, p := range []*Profile{&online, &batch, &mixed, &human, &flat} {
		normalize(p)
		out[p.Name] = *p
	}
	return out
}

// normalize scales hour and day weights to mean 1 each.
func normalize(p *Profile) {
	sumH := 0.0
	for _, w := range p.Hour {
		sumH += w
	}
	for h := range p.Hour {
		p.Hour[h] *= 24 / sumH
	}
	sumD := 0.0
	for _, w := range p.Day {
		sumD += w
	}
	for d := range p.Day {
		p.Day[d] *= 7 / sumD
	}
}
