package workload

import (
	"math/rand"
	"testing"
	"time"
)

// TestSampleTimePathologicalProfile exercises the rejection-sampler
// fallback: a profile that is zero almost everywhere still terminates and
// returns an in-window timestamp.
func TestSampleTimePathologicalProfile(t *testing.T) {
	var p Profile
	p.Name = "needle"
	// One nonzero hour on one weekday: acceptance probability within a
	// random week ≈ 1/168; the sampler's retry budget handles it.
	p.Hour[3] = 24
	p.Day[2] = 7
	rng := rand.New(rand.NewSource(4))
	lo := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	hi := lo.AddDate(0, 0, 28)
	for i := 0; i < 50; i++ {
		ts := p.SampleTime(rng, lo, hi)
		if ts.Before(lo) || !ts.Before(hi) {
			t.Fatalf("sample %v escaped the window", ts)
		}
	}
	// The absolute pathological case: all-zero weights fall back to
	// uniform rather than spinning forever.
	var zero Profile
	ts := zero.SampleTime(rng, lo, hi)
	if ts.Before(lo) || !ts.Before(hi) {
		t.Fatalf("zero-profile sample %v escaped the window", ts)
	}
}

func TestWeightConsistentWithSampling(t *testing.T) {
	// The ratio of samples landing in two hours approximates the ratio of
	// their weights.
	p := ByName(Online)
	rng := rand.New(rand.NewSource(5))
	lo := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	hi := lo.AddDate(0, 0, 28)
	var peak, trough int
	for i := 0; i < 40000; i++ {
		switch p.SampleTime(rng, lo, hi).Hour() {
		case 14:
			peak++
		case 4:
			trough++
		}
	}
	if trough == 0 {
		t.Fatal("no trough samples")
	}
	gotRatio := float64(peak) / float64(trough)
	wantRatio := p.Hour[14] / p.Hour[4]
	if gotRatio < wantRatio*0.7 || gotRatio > wantRatio*1.3 {
		t.Errorf("peak/trough ratio = %.2f, weights say %.2f", gotRatio, wantRatio)
	}
}

func TestNamesCatalogue(t *testing.T) {
	names := Names()
	if len(names) != 5 {
		t.Fatalf("catalogue has %d profiles", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate profile %q", n)
		}
		seen[n] = true
		if ByName(n).Name != n {
			t.Errorf("profile %q not retrievable", n)
		}
	}
}
