package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"dcfail/internal/stats"
)

func TestProfilesNormalized(t *testing.T) {
	for _, name := range Names() {
		p := ByName(name)
		if p.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, p.Name)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		sumH, sumD := 0.0, 0.0
		for _, w := range p.Hour {
			sumH += w
		}
		for _, w := range p.Day {
			sumD += w
		}
		if math.Abs(sumH-24) > 1e-9 {
			t.Errorf("%s: hour weights sum %g, want 24", name, sumH)
		}
		if math.Abs(sumD-7) > 1e-9 {
			t.Errorf("%s: day weights sum %g, want 7", name, sumD)
		}
	}
}

func TestByNameUnknownIsFlat(t *testing.T) {
	p := ByName("whatever")
	for _, w := range p.Hour {
		if w != 1 {
			t.Fatal("unknown profile should be flat")
		}
	}
}

func TestWeightShapes(t *testing.T) {
	online := ByName(Online)
	// Tuesday 2pm should outweigh Tuesday 4am.
	tue14 := time.Date(2015, 3, 10, 14, 0, 0, 0, time.UTC)
	tue04 := time.Date(2015, 3, 10, 4, 0, 0, 0, time.UTC)
	if !(online.Weight(tue14) > 2*online.Weight(tue04)) {
		t.Error("online: daytime should dominate")
	}
	human := ByName(Human)
	sun := time.Date(2015, 3, 8, 10, 0, 0, 0, time.UTC)
	if !(human.Weight(tue14) > 4*human.Weight(sun)) {
		t.Error("human: weekday office hours should dominate Sunday")
	}
	batch := ByName(Batch)
	tue23 := time.Date(2015, 3, 10, 23, 0, 0, 0, time.UTC)
	if !(batch.Weight(tue23) > batch.Weight(tue14)) {
		t.Error("batch: overnight should outweigh afternoon")
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	var p Profile
	if err := p.Validate(); err == nil {
		t.Error("zero profile should fail validation")
	}
	p = ByName(Flat)
	p.Hour[3] = -1
	if err := p.Validate(); err == nil {
		t.Error("negative hour weight should fail")
	}
	p = ByName(Flat)
	p.Day[0] = -1
	if err := p.Validate(); err == nil {
		t.Error("negative day weight should fail")
	}
}

func TestSampleTimeInWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := ByName(Online)
	lo := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	hi := lo.AddDate(0, 1, 0)
	for i := 0; i < 2000; i++ {
		ts := p.SampleTime(rng, lo, hi)
		if ts.Before(lo) || !ts.Before(hi) {
			t.Fatalf("sample %v outside [%v, %v)", ts, lo, hi)
		}
	}
	// Degenerate window returns lo.
	if got := p.SampleTime(rng, lo, lo); !got.Equal(lo) {
		t.Error("empty window should return lo")
	}
}

// TestSampleTimeFollowsProfile verifies the sampler reproduces the hourly
// shape: sampled hours from the online profile must be non-uniform (the
// chi-square machinery must reject), while the flat profile must pass.
func TestSampleTimeFollowsProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	lo := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC) // Monday
	hi := lo.AddDate(0, 0, 28)                        // exactly 4 weeks: no day imbalance artifacts

	run := func(name string) []int {
		p := ByName(name)
		counts := make([]int, 24)
		for i := 0; i < 20000; i++ {
			counts[p.SampleTime(rng, lo, hi).Hour()]++
		}
		return counts
	}

	onlineRes, err := stats.ChiSquareUniform(run(Online))
	if err != nil {
		t.Fatal(err)
	}
	if !onlineRes.Reject(0.01) {
		t.Errorf("online hours look uniform: %v", onlineRes)
	}
	flatRes, err := stats.ChiSquareUniform(run(Flat))
	if err != nil {
		t.Fatal(err)
	}
	if flatRes.Reject(0.001) {
		t.Errorf("flat hours rejected: %v", flatRes)
	}
}

func TestSampleTimeDayShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := ByName(Human)
	lo := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	hi := lo.AddDate(0, 0, 28)
	counts := make([]int, 7)
	for i := 0; i < 20000; i++ {
		counts[int(p.SampleTime(rng, lo, hi).Weekday())]++
	}
	// Sunday (0) must be far below Wednesday (3).
	if !(counts[3] > 3*counts[0]) {
		t.Errorf("human weekday shape wrong: %v", counts)
	}
}

func TestMaxWeightBounds(t *testing.T) {
	for _, name := range Names() {
		p := ByName(name)
		bound := p.MaxWeight()
		ts := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
		for i := 0; i < 24*7; i++ {
			if w := p.Weight(ts); w > bound+1e-12 {
				t.Errorf("%s: weight %g exceeds bound %g at %v", name, w, bound, ts)
			}
			ts = ts.Add(time.Hour)
		}
	}
}
