package dcfail

// Benchmark harness: one benchmark per paper table and figure, each
// running its analysis over the shared paper-scale trace (≈260k tickets,
// ≈124k servers, four years). `go test -bench=. -benchmem` therefore
// regenerates the entire evaluation; the printed rows live in
// cmd/fotreport and the paper-vs-measured record in EXPERIMENTS.md.

import (
	"bytes"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"dcfail/internal/core"
	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
	"dcfail/internal/fot"
	"dcfail/internal/inject"
	"dcfail/internal/report"
)

// BenchmarkGenerateSmall measures the full pipeline (fleet build,
// injection, calibration, baseline sampling, FMS) at test scale.
func BenchmarkGenerateSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := fms.Run(fleetgen.SmallProfile(), fms.DefaultConfig(), int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.Trace.Len() == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkGeneratePaper measures the pipeline at paper scale.
func BenchmarkGeneratePaper(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := fms.Run(fleetgen.PaperProfile(), fms.DefaultConfig(), int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.Trace.Len() == 0 {
			b.Fatal("empty trace")
		}
	}
}

func BenchmarkTableI(b *testing.B) {
	res, _ := paperFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CategoryBreakdown(res.Trace); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	res, _ := paperFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ComponentBreakdown(res.Trace); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	res, _ := paperFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range []fot.Component{fot.HDD, fot.RAIDCard, fot.FlashCard, fot.Memory} {
			if _, err := core.TypeBreakdown(res.Trace, c); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	res, _ := paperFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DayOfWeek(res.Trace, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	res, _ := paperFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.HourOfDay(res.Trace, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	res, _ := paperFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := core.TBFAnalysis(res.Trace, 0)
		if err != nil {
			b.Fatal(err)
		}
		if !r.AllRejected(0.05) {
			b.Fatal("hypothesis 3 unexpectedly retained")
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	res, cen := paperFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range []fot.Component{fot.HDD, fot.Memory, fot.RAIDCard, fot.FlashCard, fot.Misc} {
			if _, err := core.LifecycleRates(res.Trace, cen, c, 48); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	res, _ := paperFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ServerSkew(res.Trace); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRepeats(b *testing.B) {
	res, _ := paperFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RepeatAnalysis(res.Trace); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIV(b *testing.B) {
	res, cen := paperFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RackAnalysis(res.Trace, cen); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	res, cen := paperFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, idc := range []string{"dc01", "dc02"} {
			if _, err := core.RackPositions(res.Trace, cen, idc); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTableV(b *testing.B) {
	res, _ := paperFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BatchFrequency(res.Trace, []int{100, 200, 500}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchWindows(b *testing.B) {
	res, cen := paperFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eps, err := core.BatchWindows(res.Trace, cen, 30*time.Minute, 50)
		if err != nil {
			b.Fatal(err)
		}
		if len(eps) == 0 {
			b.Fatal("no episodes")
		}
	}
}

func BenchmarkTableVI(b *testing.B) {
	res, _ := paperFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CorrelatedPairs(res.Trace, 24*time.Hour); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableVIII(b *testing.B) {
	res, _ := paperFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SyncRepeatGroups(res.Trace, 2*time.Minute, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	res, _ := paperFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ResponseTimes(res.Trace, fot.Fixing); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	res, _ := paperFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ResponseTimesByClass(res.Trace); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	res, _ := paperFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ProductLineRT(res.Trace, fot.HDD); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationNoWorkloadGate measures the generation pipeline with
// uniform (ungated) detection times — the Hypothesis 1/2 ablation.
func BenchmarkAblationNoWorkloadGate(b *testing.B) {
	p := fleetgen.SmallProfile()
	p.WorkloadGate = false
	for i := 0; i < b.N; i++ {
		if _, err := fms.Run(p, fms.DefaultConfig(), int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationNoBatch measures generation without correlated-failure
// injection — the Hypothesis 3 / Table V ablation.
func BenchmarkAblationNoBatch(b *testing.B) {
	p := fleetgen.SmallProfile()
	p.NewInjectors = func() []inject.Injector { return nil }
	for i := 0; i < b.N; i++ {
		if _, err := fms.Run(p, fms.DefaultConfig(), int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPerfectRepair measures generation with RepeatProb 0 —
// the §III-D ablation.
func BenchmarkAblationPerfectRepair(b *testing.B) {
	cfg := fms.DefaultConfig()
	cfg.RepeatProb = 0
	for i := 0; i < b.N; i++ {
		if _, err := fms.Run(fleetgen.SmallProfile(), cfg, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullReport compares the two full-report pipelines at paper
// scale: the serial reference (every analysis refiltering the trace
// through the one-shot entry points) against the core.Runner fan-out
// over one shared fot.TraceIndex. Both render the complete 21-section
// report; the outputs must be byte-identical. When both sub-benchmarks
// run, the best-iteration wall times are written to BENCH_report.json.
//
// FULLREPORT_PROFILE=small swaps in the small fleet profile — the CI
// smoke run, which checks the serial/parallel byte identity and emits
// the JSON artifact in seconds instead of minutes.
func BenchmarkFullReport(b *testing.B) {
	profileName := "paper"
	var res *fms.Result
	var cen *core.Census
	if os.Getenv("FULLREPORT_PROFILE") == "small" {
		profileName = "small"
		r, err := fms.Run(fleetgen.SmallProfile(), fms.DefaultConfig(), 42)
		if err != nil {
			b.Fatal(err)
		}
		res, cen = r, core.CensusFromFleet(r.Fleet)
	} else {
		res, cen = paperFixture(b)
	}
	var serialNS, parallelNS int64
	var serialAllocs, serialBytes, parallelAllocs, parallelBytes uint64
	var serialOut, parallelOut []byte

	// measured wraps a sub-benchmark loop with process-wide allocation
	// accounting (runtime.ReadMemStats deltas divided by b.N), the same
	// numbers -benchmem prints, so BENCH_report.json can carry them.
	measured := func(b *testing.B, allocs, bytes *uint64, body func()) {
		runtime.GC() // level the heap so sub-benchmark order doesn't skew timings
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < b.N; i++ {
			body()
		}
		runtime.ReadMemStats(&after)
		*allocs = (after.Mallocs - before.Mallocs) / uint64(b.N)
		*bytes = (after.TotalAlloc - before.TotalAlloc) / uint64(b.N)
	}

	b.Run("serial", func(b *testing.B) {
		measured(b, &serialAllocs, &serialBytes, func() {
			var buf bytes.Buffer
			start := time.Now()
			if err := report.SerialReference(&buf, res.Trace, cen, nil); err != nil {
				b.Fatal(err)
			}
			if d := int64(time.Since(start)); serialNS == 0 || d < serialNS {
				serialNS = d
			}
			serialOut = buf.Bytes()
		})
	})
	b.Run("parallel", func(b *testing.B) {
		measured(b, &parallelAllocs, &parallelBytes, func() {
			var buf bytes.Buffer
			start := time.Now()
			// Fresh index each iteration: lazy view construction is part
			// of the measured pipeline, exactly as in cmd/fotreport.
			if err := report.Full(&buf, fot.BorrowTraceIndex(res.Trace), cen, 0, nil); err != nil {
				b.Fatal(err)
			}
			if d := int64(time.Since(start)); parallelNS == 0 || d < parallelNS {
				parallelNS = d
			}
			parallelOut = buf.Bytes()
		})
	})

	if serialNS == 0 || parallelNS == 0 {
		return // -bench filter ran only one side; nothing to compare
	}
	identical := bytes.Equal(serialOut, parallelOut)
	if !identical {
		b.Errorf("parallel report diverges from serial (%d vs %d bytes)",
			len(parallelOut), len(serialOut))
	}
	doc := map[string]interface{}{
		"benchmark":              "BenchmarkFullReport",
		"profile":                profileName,
		"tickets":                res.Trace.Len(),
		"sections":               len(report.SectionIDs()),
		"cores":                  runtime.NumCPU(),
		"workers":                runtime.NumCPU(),
		"serial_ns":              serialNS,
		"parallel_ns":            parallelNS,
		"speedup":                float64(serialNS) / float64(parallelNS),
		"serial_allocs_per_op":   serialAllocs,
		"serial_bytes_per_op":    serialBytes,
		"parallel_allocs_per_op": parallelAllocs,
		"parallel_bytes_per_op":  parallelBytes,
		"byte_identical":         identical,
		"go":                     runtime.Version(),
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_report.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("full report: serial %.2fs, parallel %.2fs, speedup %.2fx on %d cores, identical=%v",
		float64(serialNS)/1e9, float64(parallelNS)/1e9,
		float64(serialNS)/float64(parallelNS), runtime.NumCPU(), identical)
}
