package main

import (
	"testing"
	"time"

	"dcfail/internal/archive"
)

func TestSelftest(t *testing.T) {
	err := run([]string{"-listen", "127.0.0.1:0", "-selftest", "-limit", "200", "-seed", "2"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-listen", "not-an-addr"}); err == nil {
		t.Error("bad listen address accepted")
	}
	if err := run([]string{"-nope"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestSelftestWithArchive(t *testing.T) {
	dir := t.TempDir() + "/arch"
	err := run([]string{"-listen", "127.0.0.1:0", "-selftest", "-limit", "150", "-seed", "3", "-archive", dir})
	if err != nil {
		t.Fatal(err)
	}
	a, err := archive.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := a.Query(time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 150 {
		t.Errorf("archived %d tickets, want 150", tr.Len())
	}
}
