package main

import (
	"testing"
	"time"

	"dcfail/internal/archive"
	"dcfail/internal/fmsnet"
)

func TestSelftest(t *testing.T) {
	err := run([]string{"-listen", "127.0.0.1:0", "-selftest", "-limit", "200", "-seed", "2"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-listen", "not-an-addr"}); err == nil {
		t.Error("bad listen address accepted")
	}
	if err := run([]string{"-nope"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestSelftestWithWAL(t *testing.T) {
	dir := t.TempDir() + "/wal"
	err := run([]string{"-listen", "127.0.0.1:0", "-selftest", "-limit", "120", "-seed", "4", "-wal", dir})
	if err != nil {
		t.Fatal(err)
	}
	// A fresh collector on the same WAL replays the whole selftest: all
	// tickets present, everything closed.
	col, err := fmsnet.NewCollectorWith("127.0.0.1:0", fmsnet.CollectorOptions{WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	rec := col.Recovered()
	if rec.Reports != 120 {
		t.Errorf("recovered %d reports, want 120", rec.Reports)
	}
	if rec.Open != 0 {
		t.Errorf("%d tickets reopened after a drained selftest", rec.Open)
	}
	tr := col.Trace()
	if tr.Len() != 120 {
		t.Errorf("recovered trace has %d tickets, want 120", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("recovered trace invalid: %v", err)
	}
}

func TestSelftestWithArchive(t *testing.T) {
	dir := t.TempDir() + "/arch"
	err := run([]string{"-listen", "127.0.0.1:0", "-selftest", "-limit", "150", "-seed", "3", "-archive", dir})
	if err != nil {
		t.Fatal(err)
	}
	a, err := archive.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := a.Query(time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 150 {
		t.Errorf("archived %d tickets, want 150", tr.Len())
	}
}
