// Command fmsd runs the networked failure management system (paper
// Fig. 1): a TCP collector that accepts agent failure reports and
// operator commands as JSON lines, with optional live batch alerts and
// an on-disk ticket archive.
//
//	fmsd -listen 127.0.0.1:7070 -archive /var/lib/fms
//
// With -wal, the collector is crash-safe: every accepted report and
// close is appended to a write-ahead log before it is acked, and a
// restart on the same -wal directory replays the log to rebuild the
// pool — no acked ticket is ever lost.
//
//	fmsd -listen 127.0.0.1:7070 -wal /var/lib/fms-wal
//
// With -selftest, fmsd also generates a small synthetic trace, replays it
// through an agent connection, runs the automated operator loop until the
// pool drains, prints pool statistics (and any batch alerts raised on the
// way), and exits — a one-command end-to-end demonstration.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dcfail/internal/archive"
	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
	"dcfail/internal/fmsnet"
	"dcfail/internal/fot"
	"dcfail/internal/mine"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fmsd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fmsd", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7070", "collector listen address")
	selftest := fs.Bool("selftest", false, "replay a generated trace through the collector and exit")
	seed := fs.Int64("seed", 1, "selftest generation seed")
	limit := fs.Int("limit", 2000, "selftest: number of tickets to replay")
	archiveDir := fs.String("archive", "", "archive collected tickets into this directory on shutdown")
	archiveCodec := fs.String("archive-codec", archive.CodecBinary,
		"archive segment codec: binary (columnar .fotseg, open-not-replay cold start) or json (line-delimited, debuggable with standard tools)")
	walDir := fs.String("wal", "", "write-ahead log directory: append before ack, replay on start (crash safety)")
	alertWindow := fs.Duration("alert-window", 3*time.Hour, "batch alert sliding window")
	alertThreshold := fs.Int("alert-threshold", 20, "batch alert distinct-server threshold")
	jsonOnly := fs.Bool("json-only", false, "refuse binary codec negotiation; every agent stream stays NL-JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *archiveCodec != archive.CodecBinary && *archiveCodec != archive.CodecJSON {
		return fmt.Errorf("-archive-codec must be %q or %q", archive.CodecBinary, archive.CodecJSON)
	}

	collector, err := fmsnet.NewCollectorWith(*listen, fmsnet.CollectorOptions{
		WALDir:        *walDir,
		DisableBinary: *jsonOnly,
	})
	if err != nil {
		return err
	}
	if *walDir != "" {
		rec := collector.Recovered()
		fmt.Printf("fmsd: wal %s: recovered %d reports, %d closes (%d open)",
			*walDir, rec.Reports, rec.Closes, rec.Open)
		if rec.TornBytes > 0 {
			fmt.Printf(", discarded %d torn bytes", rec.TornBytes)
		}
		fmt.Println()
	}
	collector.EnableBatchAlerts(
		mine.NewBatchDetector(*alertWindow, *alertThreshold),
		func(a mine.BatchAlert) { fmt.Println("fmsd:", a.String()) },
	)
	fmt.Printf("fmsd: collecting on %s\n", collector.Addr())

	shutdown := func() error {
		cerr := collector.Close()
		if *archiveDir == "" {
			return cerr
		}
		arch, err := archive.OpenWith(*archiveDir, archive.Options{Codec: *archiveCodec})
		if err != nil {
			return err
		}
		tr := collector.Trace()
		if err := arch.AppendTrace(tr); err != nil {
			arch.Close()
			return err
		}
		if err := arch.Close(); err != nil {
			return err
		}
		fmt.Printf("fmsd: archived %d tickets into %s\n", tr.Len(), *archiveDir)
		return cerr
	}

	if *selftest {
		if err := runSelftest(collector, *seed, *limit); err != nil {
			collector.Close()
			return err
		}
		return shutdown()
	}

	// Serve until interrupted.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("fmsd: shutting down")
	return shutdown()
}

func runSelftest(collector *fmsnet.Collector, seed int64, limit int) error {
	res, err := fms.Run(fleetgen.SmallProfile(), fms.DefaultConfig(), seed)
	if err != nil {
		return err
	}

	// Automated operator reviewing the pool in the background.
	stop := make(chan struct{})
	opDone := make(chan error, 1)
	var closed int
	go func() {
		cfg := fmsnet.DefaultOperatorConfig()
		cfg.Interval = 50 * time.Millisecond
		var err error
		closed, err = fmsnet.RunOperator(collector.Addr(), cfg, stop)
		opDone <- err
	}()

	// One agent replays the simulated tickets over the wire.
	reports := make(chan *fmsnet.Report, 256)
	agentDone := make(chan error, 1)
	var stats *fmsnet.AgentStats
	go func() {
		cfg := fmsnet.DefaultAgentConfig()
		// At-least-once delivery with dedup. The id must be unique per
		// agent incarnation: a recovered WAL remembers every (AgentID,
		// Seq) pair ever acked, and this agent restarts its sequence at
		// 1 on every run.
		cfg.AgentID = fmt.Sprintf("selftest-agent-%d", time.Now().UnixNano())
		var err error
		stats, err = fmsnet.RunAgent(collector.Addr(), reports, cfg)
		agentDone <- err
	}()
	n := 0
	for _, tk := range res.Trace.Tickets {
		if n >= limit {
			break
		}
		reports <- ticketToReport(tk)
		n++
	}
	close(reports)
	if err := <-agentDone; err != nil {
		close(stop)
		<-opDone
		return fmt.Errorf("agent: %w", err)
	}
	close(stop)
	if err := <-opDone; err != nil {
		return fmt.Errorf("operator: %w", err)
	}

	operator, err := fmsnet.Dial(collector.Addr())
	if err != nil {
		return err
	}
	defer operator.Close()
	poolStats, err := operator.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("fmsd selftest: agent sent %d (retries %d), operator closed %d, pool=%+v\n",
		stats.Sent, stats.Retries, closed, *poolStats)
	if poolStats.Open != 0 {
		return fmt.Errorf("selftest left %d tickets open", poolStats.Open)
	}
	exported := collector.Trace()
	if err := exported.Validate(); err != nil {
		return fmt.Errorf("exported trace invalid: %w", err)
	}
	fmt.Printf("fmsd selftest: exported trace of %d tickets validates\n", exported.Len())
	return nil
}

func ticketToReport(tk fot.Ticket) *fmsnet.Report {
	return &fmsnet.Report{
		HostID:      tk.HostID,
		Hostname:    tk.Hostname,
		IDC:         tk.IDC,
		Rack:        tk.Rack,
		Position:    tk.Position,
		Device:      tk.Device.String(),
		Slot:        tk.Slot,
		Type:        tk.Type,
		Time:        tk.Time,
		Detail:      tk.Detail,
		ProductLine: tk.ProductLine,
		DeployTime:  tk.DeployTime,
		Model:       tk.Model,
		InWarranty:  tk.Category.String() != "D_error",
	}
}
