// Command fotlint runs dcfail's project-specific static analyzers — the
// determinism, durability, and clock-injection invariants the compiler
// cannot check — over the module. It is the "make lint" gate.
//
// Usage:
//
//	fotlint [flags] [pattern ...]
//
// Patterns are module-relative path prefixes; "./..." (the default)
// means every package. Examples:
//
//	fotlint ./...               # whole module
//	fotlint ./internal/serve    # one package subtree
//	fotlint -list               # print the rule registry
//	fotlint -rules maporder ./... # run a subset of rules
//	fotlint -json ./...         # machine-readable findings + suppressions
//	fotlint -sarif ./...        # SARIF 2.1.0 log for CI upload
//
// Exit status is 0 when every finding is fixed or reason-suppressed via
// //lint:ignore, and 1 otherwise (including malformed ignore
// directives); a path prefix matching no package is a usage error (2)
// with the nearest real directories suggested. Suppressions are counted
// on stderr so waived findings stay visible.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dcfail/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("fotlint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	list := flags.Bool("list", false, "print the rule registry and exit")
	rules := flags.String("rules", "", "comma-separated subset of rules to run (default: all)")
	showSuppressed := flags.Bool("suppressed", false, "also print suppressed findings with their reasons")
	jsonOut := flags.Bool("json", false, "emit findings and suppression records as JSON on stdout")
	sarifOut := flags.Bool("sarif", false, "emit a SARIF 2.1.0 log on stdout")
	if err := flags.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "fotlint: -json and -sarif are mutually exclusive")
		return 2
	}

	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		fmt.Fprintf(stderr, "fotlint: %v\n", err)
		return 2
	}

	if *list {
		printRegistry(stdout, analyzers)
		return 0
	}

	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintf(stderr, "fotlint: %v\n", err)
		return 2
	}
	pkgs, err := lint.NewLoader().LoadModule(root)
	if err != nil {
		fmt.Fprintf(stderr, "fotlint: %v\n", err)
		return 2
	}
	pkgs, unknown := filterPackages(pkgs, root, flags.Args())
	if len(unknown) > 0 {
		for _, u := range unknown {
			msg := fmt.Sprintf("fotlint: no packages match %q", u.pattern)
			if len(u.suggestions) > 0 {
				msg += fmt.Sprintf(" (did you mean %s?)", strings.Join(u.suggestions, ", "))
			}
			fmt.Fprintln(stderr, msg)
		}
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(stderr, "fotlint: no packages match the given patterns")
		return 2
	}

	res := lint.Run(pkgs, analyzers)
	for path, errs := range res.TypeErrors {
		// Soft type errors weaken analysis; surface the first per
		// package but do not fail: go build is the compile gate.
		fmt.Fprintf(stderr, "fotlint: note: incomplete type info for %s: %v\n", path, errs[0])
	}

	fails := res.Failures()
	switch {
	case *jsonOut:
		if err := lint.WriteJSON(stdout, analyzers, res, root); err != nil {
			fmt.Fprintf(stderr, "fotlint: %v\n", err)
			return 2
		}
	case *sarifOut:
		if err := lint.WriteSARIF(stdout, analyzers, res, root); err != nil {
			fmt.Fprintf(stderr, "fotlint: %v\n", err)
			return 2
		}
	default:
		for _, d := range fails {
			fmt.Fprintf(stdout, "%s\n", rel(root, d))
		}
		if *showSuppressed {
			for _, d := range res.Diags {
				if d.Suppressed {
					fmt.Fprintf(stdout, "%s [suppressed: %s]\n", rel(root, d), d.Reason)
				}
			}
		}
	}
	fmt.Fprintf(stderr, "fotlint: %d packages, %d rules, %d problems, %d suppressed\n",
		len(pkgs), len(analyzers), len(fails), res.Suppressed())
	if len(fails) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -rules flag against the registry.
func selectAnalyzers(spec string) ([]*lint.Analyzer, error) {
	if spec == "" {
		return lint.All(), nil
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a := lint.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown rule %q (see fotlint -list)", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-rules selected no rules")
	}
	return out, nil
}

// printRegistry renders the rule table for -list.
func printRegistry(w io.Writer, analyzers []*lint.Analyzer) {
	for _, a := range analyzers {
		scope := "all packages"
		if len(a.Scope) > 0 {
			scope = strings.Join(a.Scope, ", ")
		}
		fmt.Fprintf(w, "%-15s %s\n", a.Name, a.Doc)
		fmt.Fprintf(w, "%-15s scope: %s\n", "", scope)
		fmt.Fprintf(w, "%-15s invariant: %s\n", "", a.Invariant)
	}
}

// unknownPattern is a path prefix that matched no package, with its
// nearest real package directories for the error message.
type unknownPattern struct {
	pattern     string
	suggestions []string
}

// filterPackages keeps packages whose module-relative directory matches
// any pattern. "./..." and "" match everything; "./x/..." and "./x"
// match the subtree rooted at x. A pattern matching nothing is returned
// in unknown — a typo in a CI config must fail loudly, not lint zero
// packages successfully.
func filterPackages(pkgs []*lint.Package, root string, patterns []string) (out []*lint.Package, unknown []unknownPattern) {
	if len(patterns) == 0 {
		return pkgs, nil
	}
	relDirs := make(map[*lint.Package]string, len(pkgs))
	var allDirs []string
	for _, pkg := range pkgs {
		relDir, err := filepath.Rel(root, pkg.Dir)
		if err != nil {
			continue
		}
		relDirs[pkg] = filepath.ToSlash(relDir)
		allDirs = append(allDirs, relDirs[pkg])
	}

	matched := make(map[*lint.Package]bool)
	all := false
	for _, raw := range patterns {
		p := strings.TrimPrefix(filepath.ToSlash(raw), "./")
		p = strings.TrimSuffix(p, "...")
		p = strings.TrimSuffix(p, "/")
		if p == "" || p == "." {
			all = true
			continue
		}
		hit := false
		for _, pkg := range pkgs {
			relDir := relDirs[pkg]
			if relDir == p || strings.HasPrefix(relDir, p+"/") {
				matched[pkg] = true
				hit = true
			}
		}
		if !hit {
			unknown = append(unknown, unknownPattern{pattern: raw, suggestions: nearestDirs(p, allDirs)})
		}
	}
	if all {
		return pkgs, unknown
	}
	for _, pkg := range pkgs {
		if matched[pkg] {
			out = append(out, pkg)
		}
	}
	return out, unknown
}

// nearestDirs ranks package directories by edit distance to the failed
// pattern and returns up to three close ones.
func nearestDirs(pattern string, dirs []string) []string {
	type cand struct {
		dir  string
		dist int
	}
	var cands []cand
	for _, d := range dirs {
		dist := editDistance(pattern, d)
		// Only offer plausible typos: within a third of the pattern's
		// length, so "internal/srve" suggests internal/serve but "zzz"
		// suggests nothing.
		if dist*3 <= len(pattern) {
			cands = append(cands, cand{dir: d, dist: dist})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].dir < cands[j].dir
	})
	var out []string
	for _, c := range cands {
		out = append(out, "./"+c.dir)
		if len(out) == 3 {
			break
		}
	}
	return out
}

// editDistance is the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// rel shortens a diagnostic's path to be module-relative for readable,
// stable output.
func rel(root string, d lint.Diagnostic) string {
	s := d.String()
	if r, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
		s = fmt.Sprintf("%s:%d:%d: %s: %s", r, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
	}
	return s
}
