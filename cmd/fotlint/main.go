// Command fotlint runs dcfail's project-specific static analyzers — the
// determinism, durability, and clock-injection invariants the compiler
// cannot check — over the module. It is the "make lint" gate.
//
// Usage:
//
//	fotlint [flags] [pattern ...]
//
// Patterns are module-relative path prefixes; "./..." (the default)
// means every package. Examples:
//
//	fotlint ./...               # whole module
//	fotlint ./internal/serve    # one package subtree
//	fotlint -list               # print the rule registry
//	fotlint -rules maporder ./... # run a subset of rules
//
// Exit status is 0 when every finding is fixed or reason-suppressed via
// //lint:ignore, and 1 otherwise (including malformed ignore
// directives). Suppressions are counted on stderr so waived findings
// stay visible.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dcfail/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("fotlint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	list := flags.Bool("list", false, "print the rule registry and exit")
	rules := flags.String("rules", "", "comma-separated subset of rules to run (default: all)")
	showSuppressed := flags.Bool("suppressed", false, "also print suppressed findings with their reasons")
	if err := flags.Parse(args); err != nil {
		return 2
	}

	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		fmt.Fprintf(stderr, "fotlint: %v\n", err)
		return 2
	}

	if *list {
		printRegistry(stdout, analyzers)
		return 0
	}

	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintf(stderr, "fotlint: %v\n", err)
		return 2
	}
	pkgs, err := lint.NewLoader().LoadModule(root)
	if err != nil {
		fmt.Fprintf(stderr, "fotlint: %v\n", err)
		return 2
	}
	pkgs = filterPackages(pkgs, root, flags.Args())
	if len(pkgs) == 0 {
		fmt.Fprintln(stderr, "fotlint: no packages match the given patterns")
		return 2
	}

	res := lint.Run(pkgs, analyzers)
	for path, errs := range res.TypeErrors {
		// Soft type errors weaken analysis; surface the first per
		// package but do not fail: go build is the compile gate.
		fmt.Fprintf(stderr, "fotlint: note: incomplete type info for %s: %v\n", path, errs[0])
	}

	fails := res.Failures()
	for _, d := range fails {
		fmt.Fprintf(stdout, "%s\n", rel(root, d))
	}
	if *showSuppressed {
		for _, d := range res.Diags {
			if d.Suppressed {
				fmt.Fprintf(stdout, "%s [suppressed: %s]\n", rel(root, d), d.Reason)
			}
		}
	}
	fmt.Fprintf(stderr, "fotlint: %d packages, %d rules, %d problems, %d suppressed\n",
		len(pkgs), len(analyzers), len(fails), res.Suppressed())
	if len(fails) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -rules flag against the registry.
func selectAnalyzers(spec string) ([]*lint.Analyzer, error) {
	if spec == "" {
		return lint.All(), nil
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a := lint.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown rule %q (see fotlint -list)", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-rules selected no rules")
	}
	return out, nil
}

// printRegistry renders the rule table for -list.
func printRegistry(w io.Writer, analyzers []*lint.Analyzer) {
	for _, a := range analyzers {
		scope := "all packages"
		if len(a.Scope) > 0 {
			scope = strings.Join(a.Scope, ", ")
		}
		fmt.Fprintf(w, "%-15s %s\n", a.Name, a.Doc)
		fmt.Fprintf(w, "%-15s scope: %s\n", "", scope)
		fmt.Fprintf(w, "%-15s invariant: %s\n", "", a.Invariant)
	}
}

// filterPackages keeps packages whose module-relative directory matches
// any pattern. "./..." and "" match everything; "./x/..." and "./x"
// match the subtree rooted at x.
func filterPackages(pkgs []*lint.Package, root string, patterns []string) []*lint.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	var prefixes []string
	for _, p := range patterns {
		p = strings.TrimPrefix(filepath.ToSlash(p), "./")
		p = strings.TrimSuffix(p, "...")
		p = strings.TrimSuffix(p, "/")
		if p == "" || p == "." {
			return pkgs
		}
		prefixes = append(prefixes, p)
	}
	var out []*lint.Package
	for _, pkg := range pkgs {
		relDir, err := filepath.Rel(root, pkg.Dir)
		if err != nil {
			continue
		}
		relDir = filepath.ToSlash(relDir)
		for _, pre := range prefixes {
			if relDir == pre || strings.HasPrefix(relDir, pre+"/") {
				out = append(out, pkg)
				break
			}
		}
	}
	return out
}

// rel shortens a diagnostic's path to be module-relative for readable,
// stable output.
func rel(root string, d lint.Diagnostic) string {
	s := d.String()
	if r, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
		s = fmt.Sprintf("%s:%d:%d: %s: %s", r, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
	}
	return s
}
