package main

import (
	"bytes"
	"strings"
	"testing"

	"dcfail/internal/lint"
)

// TestListPrintsRegistry: -list names every registered rule with its
// scope and invariant (the satellite discoverability contract).
func TestListPrintsRegistry(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("fotlint -list exited %d: %s", code, errb.String())
	}
	for _, a := range lint.All() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output is missing rule %q", a.Name)
		}
		if !strings.Contains(out.String(), a.Doc) {
			t.Errorf("-list output is missing the doc line for %q", a.Name)
		}
	}
	if !strings.Contains(out.String(), "invariant:") {
		t.Error("-list output is missing the invariant lines")
	}
}

// TestRepoIsLintClean is the self-gate behind `make lint`: the module
// carries zero unsuppressed findings and zero malformed directives.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"./..."}, &out, &errb); code != 0 {
		t.Fatalf("fotlint ./... exited %d\nfindings:\n%s\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "0 problems") {
		t.Errorf("summary does not report a clean run: %s", errb.String())
	}
}

// TestUnknownRuleIsUsageError: a typo in -rules must not silently lint
// nothing.
func TestUnknownRuleIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-rules", "nosuchrule"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown rule") {
		t.Errorf("stderr does not explain the unknown rule: %s", errb.String())
	}
}

// TestFilterPackages pins the "./..."-style pattern semantics.
func TestFilterPackages(t *testing.T) {
	mk := func(dir string) *lint.Package { return &lint.Package{Dir: dir} }
	pkgs := []*lint.Package{mk("/m"), mk("/m/internal/core"), mk("/m/internal/wal"), mk("/m/cmd/fotlint")}

	if got := filterPackages(pkgs, "/m", []string{"./..."}); len(got) != len(pkgs) {
		t.Errorf("./... kept %d of %d packages", len(got), len(pkgs))
	}
	got := filterPackages(pkgs, "/m", []string{"./internal/..."})
	if len(got) != 2 {
		t.Fatalf("./internal/... kept %d packages, want 2", len(got))
	}
	for _, p := range got {
		if !strings.Contains(p.Dir, "/internal/") {
			t.Errorf("unexpected package %s under ./internal/...", p.Dir)
		}
	}
	if got := filterPackages(pkgs, "/m", []string{"./internal/wal", "./cmd/fotlint"}); len(got) != 2 {
		t.Errorf("explicit dirs kept %d packages, want 2", len(got))
	}
}
