package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dcfail/internal/lint"
)

// TestListPrintsRegistry: -list names every registered rule with its
// scope and invariant (the satellite discoverability contract).
func TestListPrintsRegistry(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("fotlint -list exited %d: %s", code, errb.String())
	}
	for _, a := range lint.All() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output is missing rule %q", a.Name)
		}
		if !strings.Contains(out.String(), a.Doc) {
			t.Errorf("-list output is missing the doc line for %q", a.Name)
		}
	}
	if !strings.Contains(out.String(), "invariant:") {
		t.Error("-list output is missing the invariant lines")
	}
}

// TestRepoIsLintClean is the self-gate behind `make lint`: the module
// carries zero unsuppressed findings and zero malformed directives.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"./..."}, &out, &errb); code != 0 {
		t.Fatalf("fotlint ./... exited %d\nfindings:\n%s\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "0 problems") {
		t.Errorf("summary does not report a clean run: %s", errb.String())
	}
}

// TestJSONCarriesSuppressionRecords: -json output lists every waived
// finding with its rule and //lint:ignore reason, so suppressions stay
// auditable in CI artifacts.
func TestJSONCarriesSuppressionRecords(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "./internal/serve"}, &out, &errb); code != 0 {
		t.Fatalf("fotlint -json exited %d: %s", code, errb.String())
	}
	var rep struct {
		Rules []struct {
			Name string `json:"name"`
		} `json:"rules"`
		Findings   []json.RawMessage `json:"findings"`
		Suppressed []struct {
			Rule   string `json:"rule"`
			File   string `json:"file"`
			Line   int    `json:"line"`
			Reason string `json:"reason"`
		} `json:"suppressed"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if len(rep.Rules) != len(lint.All())+1 {
		t.Errorf("rules = %d, want registry + pseudo-rule lint", len(rep.Rules))
	}
	if len(rep.Findings) != 0 {
		t.Errorf("clean tree reported %d findings", len(rep.Findings))
	}
	if len(rep.Suppressed) == 0 {
		t.Fatal("no suppression records for ./internal/serve (state.go carries reasoned //lint:ignore directives)")
	}
	for _, s := range rep.Suppressed {
		if s.Rule == "" || s.File == "" || s.Line == 0 || s.Reason == "" {
			t.Errorf("incomplete suppression record: %+v", s)
		}
	}
}

// TestUnknownRuleIsUsageError: a typo in -rules must not silently lint
// nothing.
func TestUnknownRuleIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-rules", "nosuchrule"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown rule") {
		t.Errorf("stderr does not explain the unknown rule: %s", errb.String())
	}
}

// TestFilterPackages pins the "./..."-style pattern semantics.
func TestFilterPackages(t *testing.T) {
	mk := func(dir string) *lint.Package { return &lint.Package{Dir: dir} }
	pkgs := []*lint.Package{mk("/m"), mk("/m/internal/core"), mk("/m/internal/wal"), mk("/m/cmd/fotlint")}

	if got, unknown := filterPackages(pkgs, "/m", []string{"./..."}); len(got) != len(pkgs) || len(unknown) != 0 {
		t.Errorf("./... kept %d of %d packages (%d unknown)", len(got), len(pkgs), len(unknown))
	}
	got, unknown := filterPackages(pkgs, "/m", []string{"./internal/..."})
	if len(got) != 2 || len(unknown) != 0 {
		t.Fatalf("./internal/... kept %d packages, want 2 (%d unknown)", len(got), len(unknown))
	}
	for _, p := range got {
		if !strings.Contains(p.Dir, "/internal/") {
			t.Errorf("unexpected package %s under ./internal/...", p.Dir)
		}
	}
	if got, unknown := filterPackages(pkgs, "/m", []string{"./internal/wal", "./cmd/fotlint"}); len(got) != 2 || len(unknown) != 0 {
		t.Errorf("explicit dirs kept %d packages, want 2 (%d unknown)", len(got), len(unknown))
	}
}

// TestUnknownPatternIsRejected: a prefix matching no package is a usage
// error carrying a "did you mean" list, not a silent zero-package run.
func TestUnknownPatternIsRejected(t *testing.T) {
	mk := func(dir string) *lint.Package { return &lint.Package{Dir: dir} }
	pkgs := []*lint.Package{mk("/m/internal/serve"), mk("/m/internal/wal")}

	got, unknown := filterPackages(pkgs, "/m", []string{"./internal/srve"})
	if len(got) != 0 {
		t.Errorf("typo pattern kept %d packages, want 0", len(got))
	}
	if len(unknown) != 1 {
		t.Fatalf("got %d unknown patterns, want 1", len(unknown))
	}
	if unknown[0].pattern != "./internal/srve" {
		t.Errorf("unknown pattern = %q", unknown[0].pattern)
	}
	found := false
	for _, s := range unknown[0].suggestions {
		if s == "./internal/serve" {
			found = true
		}
	}
	if !found {
		t.Errorf("suggestions %v do not include ./internal/serve", unknown[0].suggestions)
	}

	// A pattern with no plausible neighbor still errors, just without
	// suggestions.
	if _, unknown := filterPackages(pkgs, "/m", []string{"./zzz"}); len(unknown) != 1 || len(unknown[0].suggestions) != 0 {
		t.Errorf("far-off pattern: unknown = %+v, want 1 entry with no suggestions", unknown)
	}

	// One good and one bad pattern: the bad one is still reported.
	got, unknown = filterPackages(pkgs, "/m", []string{"./internal/wal", "./internal/srve"})
	if len(got) != 1 || len(unknown) != 1 {
		t.Errorf("mixed patterns: %d packages, %d unknown; want 1 and 1", len(got), len(unknown))
	}
}

// TestUnknownPatternExitsTwo drives the CLI end to end on the real
// module with a typoed path prefix.
func TestUnknownPatternExitsTwo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"./internal/srve"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "did you mean") || !strings.Contains(errb.String(), "./internal/serve") {
		t.Errorf("stderr lacks the did-you-mean suggestion: %s", errb.String())
	}
}
