// Command fotreport runs every analysis of the DSN'17 study over a ticket
// trace and prints each paper table and figure.
//
// Two modes:
//
//	fotreport -profile small -seed 1
//	    Generate the trace in memory and analyze it (census included).
//
//	fotreport -trace trace.csv -profile small -seed 1
//	    Load a trace written by fotgen; the fleet census is rebuilt
//	    deterministically from the same (profile, seed).
//
// Select a subset with -only (comma-separated ids):
//
//	fotreport -only table1,table5,fig9,mine
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"dcfail/internal/archive"
	"dcfail/internal/core"
	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
	"dcfail/internal/fot"
	"dcfail/internal/report"
	"dcfail/internal/topo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fotreport:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("fotreport", flag.ContinueOnError)
	profileName := fs.String("profile", "small", "generation profile: small | paper")
	seed := fs.Int64("seed", 1, "deterministic generation seed")
	tracePath := fs.String("trace", "", "trace file from fotgen (csv or jsonl by extension); empty = generate in memory")
	archiveDir := fs.String("archive", "", "read the trace from a fotgen -archive directory")
	csvDir := fs.String("csvdir", "", "also export every figure's data series as CSV files into this directory")
	only := fs.String("only", "", "comma-separated subset of: table1,table2,fig2,fig3,fig4,fig5,fig6,fig7,repeats,table4,fig8,table5,batches,table6,table8,fig9,fig10,fig11,mine,trend,verdicts")
	workers := fs.Int("workers", 0, "parallel section workers; 0 = one per CPU, 1 = serial")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the analysis to this file")
	memProfile := fs.String("memprofile", "", "write an allocation profile (after the report) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC() // flush accurate allocation counts into the profile
			if werr := pprof.Lookup("allocs").WriteTo(f, 0); werr != nil {
				fmt.Fprintln(os.Stderr, "fotreport: memprofile:", werr)
			}
			f.Close()
		}()
	}
	profile, err := profileByName(*profileName)
	if err != nil {
		return err
	}

	var trace *fot.Trace
	var fleet *topo.Fleet
	switch {
	case *tracePath != "" && *archiveDir != "":
		return fmt.Errorf("-trace and -archive are mutually exclusive")
	case *tracePath == "" && *archiveDir == "":
		res, err := fms.Run(profile, fms.DefaultConfig(), *seed)
		if err != nil {
			return err
		}
		trace, fleet = res.Trace, res.Fleet
	case *archiveDir != "":
		arch, err := archive.Open(*archiveDir, 0)
		if err != nil {
			return err
		}
		trace, err = arch.Query(time.Time{}, time.Time{})
		if cerr := arch.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fleet, err = topo.Build(profile.FleetSpec, *seed)
		if err != nil {
			return err
		}
	default:
		trace, err = loadTrace(*tracePath)
		if err != nil {
			return err
		}
		fleet, err = topo.Build(profile.FleetSpec, *seed)
		if err != nil {
			return err
		}
	}
	census := core.CensusFromFleet(fleet)

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToLower(id)] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	if *csvDir != "" {
		if err := exportCSVs(trace, census, *csvDir); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fotreport: figure CSVs written to %s\n", *csvDir)
	}
	// Borrow rather than snapshot: the trace is ours and nothing mutates
	// it while the runner fans the sections out. Render into memory
	// first — a section that fails must not leave a truncated report on
	// stdout; the command exits non-zero with the error alone.
	var buf bytes.Buffer
	if err := report.Full(&buf, fot.BorrowTraceIndex(trace), census, *workers, sel); err != nil {
		return err
	}
	_, err = buf.WriteTo(w)
	return err
}

// exportCSVs writes each figure's data series into dir.
func exportCSVs(trace *fot.Trace, census *core.Census, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return report.FigureCSVs(trace, census, func(name string, render func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	})
}

func loadTrace(path string) (*fot.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".jsonl") {
		return fot.ReadJSONL(f)
	}
	return fot.ReadCSV(f)
}

func profileByName(name string) (fleetgen.Profile, error) {
	switch name {
	case "small":
		return fleetgen.SmallProfile(), nil
	case "paper":
		return fleetgen.PaperProfile(), nil
	default:
		return fleetgen.Profile{}, fmt.Errorf("unknown profile %q (want small or paper)", name)
	}
}
