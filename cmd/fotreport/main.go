// Command fotreport runs every analysis of the DSN'17 study over a ticket
// trace and prints each paper table and figure.
//
// Two modes:
//
//	fotreport -profile small -seed 1
//	    Generate the trace in memory and analyze it (census included).
//
//	fotreport -trace trace.csv -profile small -seed 1
//	    Load a trace written by fotgen; the fleet census is rebuilt
//	    deterministically from the same (profile, seed).
//
// Select a subset with -only (comma-separated ids):
//
//	fotreport -only table1,table5,fig9,mine
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dcfail/internal/archive"
	"dcfail/internal/core"
	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
	"dcfail/internal/fot"
	"dcfail/internal/mine"
	"dcfail/internal/report"
	"dcfail/internal/topo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fotreport:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("fotreport", flag.ContinueOnError)
	profileName := fs.String("profile", "small", "generation profile: small | paper")
	seed := fs.Int64("seed", 1, "deterministic generation seed")
	tracePath := fs.String("trace", "", "trace file from fotgen (csv or jsonl by extension); empty = generate in memory")
	archiveDir := fs.String("archive", "", "read the trace from a fotgen -archive directory")
	csvDir := fs.String("csvdir", "", "also export every figure's data series as CSV files into this directory")
	only := fs.String("only", "", "comma-separated subset of: table1,table2,fig2,fig3,fig4,fig5,fig6,fig7,repeats,table4,fig8,table5,batches,table6,table8,fig9,fig10,fig11,mine,trend,verdicts")
	if err := fs.Parse(args); err != nil {
		return err
	}
	profile, err := profileByName(*profileName)
	if err != nil {
		return err
	}

	var trace *fot.Trace
	var fleet *topo.Fleet
	switch {
	case *tracePath != "" && *archiveDir != "":
		return fmt.Errorf("-trace and -archive are mutually exclusive")
	case *tracePath == "" && *archiveDir == "":
		res, err := fms.Run(profile, fms.DefaultConfig(), *seed)
		if err != nil {
			return err
		}
		trace, fleet = res.Trace, res.Fleet
	case *archiveDir != "":
		arch, err := archive.Open(*archiveDir, 0)
		if err != nil {
			return err
		}
		trace, err = arch.Query(time.Time{}, time.Time{})
		if cerr := arch.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fleet, err = topo.Build(profile.FleetSpec, *seed)
		if err != nil {
			return err
		}
	default:
		trace, err = loadTrace(*tracePath)
		if err != nil {
			return err
		}
		fleet, err = topo.Build(profile.FleetSpec, *seed)
		if err != nil {
			return err
		}
	}
	census := core.CensusFromFleet(fleet)

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToLower(id)] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	if *csvDir != "" {
		if err := exportCSVs(trace, census, *csvDir); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fotreport: figure CSVs written to %s\n", *csvDir)
	}
	return printAll(w, trace, census, sel)
}

// exportCSVs writes each figure's data series into dir.
func exportCSVs(trace *fot.Trace, census *core.Census, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return report.FigureCSVs(trace, census, func(name string, render func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	})
}

func printAll(w io.Writer, trace *fot.Trace, census *core.Census, sel func(string) bool) error {
	section := func(id string, fn func() error) error {
		if !sel(id) {
			return nil
		}
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		_, err := fmt.Fprintln(w)
		return err
	}

	if err := section("verdicts", func() error {
		r, err := core.Hypotheses(trace, census)
		if err != nil {
			return err
		}
		return report.Hypotheses(w, r)
	}); err != nil {
		return err
	}
	if err := section("table1", func() error {
		r, err := core.CategoryBreakdown(trace)
		if err != nil {
			return err
		}
		return report.CategoryBreakdown(w, r)
	}); err != nil {
		return err
	}
	if err := section("table2", func() error {
		r, err := core.ComponentBreakdown(trace)
		if err != nil {
			return err
		}
		return report.ComponentBreakdown(w, r)
	}); err != nil {
		return err
	}
	if err := section("fig2", func() error {
		for _, c := range []fot.Component{fot.HDD, fot.RAIDCard, fot.FlashCard, fot.Memory} {
			r, err := core.TypeBreakdown(trace, c)
			if err != nil {
				return err
			}
			if err := report.TypeBreakdown(w, r); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := section("fig3", func() error {
		r, err := core.DayOfWeek(trace, 0)
		if err != nil {
			return err
		}
		return report.DayOfWeek(w, r)
	}); err != nil {
		return err
	}
	if err := section("fig4", func() error {
		for _, c := range []fot.Component{fot.HDD, fot.Misc} {
			r, err := core.HourOfDay(trace, c)
			if err != nil {
				return err
			}
			if err := report.HourOfDay(w, r); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := section("fig5", func() error {
		r, err := core.TBFAnalysis(trace, 0)
		if err != nil {
			return err
		}
		return report.TBF(w, r)
	}); err != nil {
		return err
	}
	if err := section("fig6", func() error {
		for _, c := range []fot.Component{fot.HDD, fot.Memory, fot.RAIDCard, fot.FlashCard, fot.Misc} {
			r, err := core.LifecycleRates(trace, census, c, 48)
			if err != nil {
				return err
			}
			if err := report.Lifecycle(w, r); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := section("fig7", func() error {
		r, err := core.ServerSkew(trace)
		if err != nil {
			return err
		}
		return report.ServerSkew(w, r)
	}); err != nil {
		return err
	}
	if err := section("repeats", func() error {
		r, err := core.RepeatAnalysis(trace)
		if err != nil {
			return err
		}
		return report.Repeats(w, r)
	}); err != nil {
		return err
	}
	if err := section("table4", func() error {
		r, err := core.RackAnalysis(trace, census)
		if err != nil {
			return err
		}
		return report.RackAnalysis(w, r)
	}); err != nil {
		return err
	}
	if err := section("fig8", func() error {
		for _, idc := range []string{"dc01", "dc02"} {
			r, err := core.RackPositions(trace, census, idc)
			if err != nil {
				return err
			}
			if err := report.RackPositions(w, r); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := section("table5", func() error {
		r, err := core.BatchFrequency(trace, nil)
		if err != nil {
			return err
		}
		return report.BatchFrequency(w, r)
	}); err != nil {
		return err
	}
	if err := section("batches", func() error {
		eps, err := core.BatchWindows(trace, census, 30*time.Minute, 20)
		if err != nil {
			return err
		}
		return report.BatchEpisodes(w, eps, 10)
	}); err != nil {
		return err
	}
	if err := section("table6", func() error {
		r, err := core.CorrelatedPairs(trace, 24*time.Hour)
		if err != nil {
			return err
		}
		return report.CorrelatedPairs(w, r)
	}); err != nil {
		return err
	}
	if err := section("table8", func() error {
		groups, err := core.SyncRepeatGroups(trace, 2*time.Minute, 3)
		if err != nil {
			return err
		}
		return report.SyncRepeatGroups(w, groups, 10)
	}); err != nil {
		return err
	}
	if err := section("fig9", func() error {
		for _, cat := range []fot.Category{fot.Fixing, fot.FalseAlarm} {
			r, err := core.ResponseTimes(trace, cat)
			if err != nil {
				return err
			}
			if err := report.ResponseTimes(w, cat.String(), r); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := section("fig10", func() error {
		r, err := core.ResponseTimesByClass(trace)
		if err != nil {
			return err
		}
		return report.ResponseTimesByClass(w, r)
	}); err != nil {
		return err
	}
	if err := section("fig11", func() error {
		r, err := core.ProductLineRT(trace, fot.HDD)
		if err != nil {
			return err
		}
		return report.ProductLineRT(w, r, 15)
	}); err != nil {
		return err
	}
	if err := section("trend", func() error {
		r, err := core.Trend(trace)
		if err != nil {
			return err
		}
		return report.Trend(w, r)
	}); err != nil {
		return err
	}
	return section("mine", func() error {
		rules, err := mine.MineRules(trace, 24*time.Hour, 3, 3.0)
		if err != nil {
			return err
		}
		if err := report.MiningRules(w, rules, 12); err != nil {
			return err
		}
		eval, err := mine.EvaluateWarningPredictor(trace, 10*24*time.Hour)
		if err != nil {
			return err
		}
		return report.PredictorEval(w, eval)
	})
}

func loadTrace(path string) (*fot.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".jsonl") {
		return fot.ReadJSONL(f)
	}
	return fot.ReadCSV(f)
}

func profileByName(name string) (fleetgen.Profile, error) {
	switch name {
	case "small":
		return fleetgen.SmallProfile(), nil
	case "paper":
		return fleetgen.PaperProfile(), nil
	default:
		return fleetgen.Profile{}, fmt.Errorf("unknown profile %q (want small or paper)", name)
	}
}
