package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// falseAlarmCSV parses cleanly but makes every failure-based section
// error: Table I renders, Fig. 5 (time between failures) cannot.
const falseAlarmCSV = `id,host_id,hostname,host_idc,rack,position,error_device,error_slot,error_type,error_time,error_detail,category,action,operator,op_time,product_line,deploy_time,model
1,101,h1,idc1,r1,1,hdd,s0,disk_error,2013-01-01T00:00:00Z,,D_falsealarm,none,op,,pl,,m1
2,102,h2,idc1,r2,1,hdd,s0,disk_error,2013-01-02T00:00:00Z,,D_falsealarm,none,op,,pl,,m1
3,103,h3,idc1,r3,1,hdd,s0,disk_error,2013-01-03T00:00:00Z,,D_falsealarm,none,op,,pl,,m1
`

// runBinary go-runs this package against args, returning exit code,
// stdout and stderr separately.
func runBinary(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "."}, args...)...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if exit, ok := err.(*exec.ExitError); ok {
		code = exit.ExitCode()
	} else if err != nil {
		t.Fatalf("go run: %v\n%s", err, stderr.String())
	}
	return code, stdout.String(), stderr.String()
}

// TestSectionErrorLeavesNoPartialOutput is the regression test for the
// truncated-report bug: a section failing after earlier sections have
// rendered used to leave a partial report on stdout with exit 1. Now
// stdout must stay empty and stderr must carry exactly one error line.
func TestSectionErrorLeavesNoPartialOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "falsealarm.csv")
	if err := os.WriteFile(path, []byte(falseAlarmCSV), 0o644); err != nil {
		t.Fatal(err)
	}

	code, stdout, stderr := runBinary(t, "-trace", path, "-only", "table1,fig5")
	if code == 0 {
		t.Fatal("want non-zero exit for failing section")
	}
	if stdout != "" {
		t.Fatalf("stdout must be empty on failure, got %d bytes:\n%s", len(stdout), stdout)
	}
	if lines := strings.Count(strings.TrimSpace(firstOwnLine(stderr)), "\n"); lines != 0 {
		t.Fatalf("want a one-line error on stderr, got:\n%s", stderr)
	}
	if !strings.Contains(stderr, "fotreport:") || !strings.Contains(stderr, "fig5") {
		t.Fatalf("stderr should name the tool and the failing section:\n%s", stderr)
	}

	// The same trace with only renderable sections still works.
	code, stdout, _ = runBinary(t, "-trace", path, "-only", "table1")
	if code != 0 || !strings.Contains(stdout, "Table I") {
		t.Fatalf("healthy subset failed: exit %d, stdout:\n%s", code, stdout)
	}
}

// TestCorruptInputFailsCleanly pins the unreadable/corrupt-input
// contract: non-zero exit, empty stdout, one-line stderr.
func TestCorruptInputFailsCleanly(t *testing.T) {
	dir := t.TempDir()
	corrupt := filepath.Join(dir, "corrupt.csv")
	if err := os.WriteFile(corrupt, []byte("id,host\nnot,a,trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ name, path string }{
		{"corrupt", corrupt},
		{"missing", filepath.Join(dir, "nope.csv")},
	} {
		code, stdout, stderr := runBinary(t, "-trace", tc.path)
		if code == 0 {
			t.Errorf("%s: want non-zero exit", tc.name)
		}
		if stdout != "" {
			t.Errorf("%s: stdout must be empty, got:\n%s", tc.name, stdout)
		}
		if !strings.HasPrefix(stderr, "fotreport: ") {
			t.Errorf("%s: stderr should lead with the error line:\n%s", tc.name, stderr)
		}
	}
}

// firstOwnLine strips go run's trailing "exit status N" noise, leaving
// only the lines the binary itself printed.
func firstOwnLine(stderr string) string {
	var own []string
	for _, line := range strings.Split(strings.TrimSpace(stderr), "\n") {
		if strings.HasPrefix(line, "exit status ") {
			continue
		}
		own = append(own, line)
	}
	return strings.Join(own, "\n")
}
