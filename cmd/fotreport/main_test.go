package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dcfail/internal/archive"
	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
)

func TestRunInMemorySubset(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-profile", "small", "-seed", "4", "-only", "table1,table2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table I —") || !strings.Contains(out, "Table II —") {
		t.Errorf("missing tables:\n%s", out)
	}
	if strings.Contains(out, "Fig. 5") {
		t.Error("-only leaked other sections")
	}
}

func TestRunAllSections(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-profile", "small", "-seed", "4"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table I —", "Table II —", "Fig. 2", "Fig. 3", "Fig. 4", "Fig. 5",
		"Fig. 6", "Fig. 7", "§III-D", "Table IV", "Fig. 8", "Table V",
		"§V-A", "Table VI", "Table VIII", "Fig. 9", "Fig. 10", "Fig. 11",
		"§VII-B", "§VII-A", "Trend —", "Hypotheses —",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFromTraceFile(t *testing.T) {
	// Generate the same trace fotgen would, save it, and reload.
	res, err := fms.Run(fleetgen.SmallProfile(), fms.DefaultConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = run([]string{"-trace", path, "-profile", "small", "-seed", "5", "-only", "table2,fig8"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table II —") || !strings.Contains(buf.String(), "Fig. 8") {
		t.Errorf("trace-file mode output wrong:\n%s", buf.String())
	}
}

func TestRunJSONLTraceFile(t *testing.T) {
	res, err := fms.Run(fleetgen.SmallProfile(), fms.DefaultConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-trace", path, "-only", "table1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table I —") {
		t.Error("jsonl trace not analyzed")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	cases := [][]string{
		{"-profile", "bogus"},
		{"-trace", "/no/such/file.csv"},
		{"-nope"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunFromArchive(t *testing.T) {
	res, err := fms.Run(fleetgen.SmallProfile(), fms.DefaultConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "arch")
	a, err := archive.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AppendTrace(res.Trace); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-archive", dir, "-seed", "5", "-only", "table2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table II —") {
		t.Error("archive mode output wrong")
	}
	// Mutually exclusive flags rejected.
	if err := run([]string{"-archive", dir, "-trace", "x.csv"}, &bytes.Buffer{}); err == nil {
		t.Error("-trace and -archive together accepted")
	}
}

func TestRunCSVExport(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "csv")
	var buf bytes.Buffer
	if err := run([]string{"-seed", "4", "-only", "table1", "-csvdir", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 10 {
		t.Errorf("only %d CSV files exported", len(entries))
	}
	raw, err := os.ReadFile(filepath.Join(dir, "fig3_weekday.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(raw), "day,count,fraction") {
		t.Errorf("fig3 csv malformed: %q", string(raw[:40]))
	}
}
