// Command fotmine runs the §VII-B mining layer over a ticket trace: the
// related-information report for a specific ticket, the fleet-wide
// temporal association rules, and the §VII-A early-warning predictor
// scorecard.
//
//	fotmine -trace trace.csv -ticket 1234      # context for one FOT
//	fotmine -trace trace.csv -rules            # association rules
//	fotmine -trace trace.csv -predict -horizon 240h
//	fotmine -profile small -seed 1 -rules      # in-memory trace
//	fotmine -eval-predictor -train-seed 1 -eval-seeds 2,3,4
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
	"dcfail/internal/fot"
	"dcfail/internal/mine"
	"dcfail/internal/predict"
	"dcfail/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fotmine:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("fotmine", flag.ContinueOnError)
	profileName := fs.String("profile", "small", "generation profile when no trace file is given: small | paper")
	seed := fs.Int64("seed", 1, "deterministic generation seed")
	tracePath := fs.String("trace", "", "trace file from fotgen (csv or jsonl by extension)")
	ticketID := fs.Uint64("ticket", 0, "print the related-information context for this ticket id")
	rules := fs.Bool("rules", false, "mine temporal association rules")
	predictFlag := fs.Bool("predict", false, "score the warning-based failure predictor")
	chronic := fs.Bool("chronic", false, "rank the worst repeat-flapping servers")
	horizon := fs.Duration("horizon", 10*24*time.Hour, "predictor horizon / rule window scale")
	minSupport := fs.Int("min-support", 3, "rules: minimum supporting servers")
	minLift := fs.Float64("min-lift", 3.0, "rules: minimum temporal lift")
	evalPredictor := fs.Bool("eval-predictor", false, "run the streaming-predictor evaluation harness over generated seeds")
	trainSeed := fs.Int64("train-seed", 1, "eval-predictor: seed for the threshold-fitting trace")
	evalSeeds := fs.String("eval-seeds", "2,3,4", "eval-predictor: comma-separated held-out seeds")
	evalHorizons := fs.String("eval-horizons", "120h,240h", "eval-predictor: comma-separated prediction horizons")
	evalCuts := fs.Int("eval-cuts", 6, "eval-predictor: evaluation cut instants per trace")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *evalPredictor {
		var profile fleetgen.Profile
		switch *profileName {
		case "small":
			profile = fleetgen.SmallProfile()
		case "paper":
			profile = fleetgen.PaperProfile()
		default:
			return fmt.Errorf("unknown profile %q (want small or paper)", *profileName)
		}
		return runEvalPredictor(w, profile, *trainSeed, *evalSeeds, *evalHorizons, *evalCuts)
	}
	if *ticketID == 0 && !*rules && !*predictFlag && !*chronic {
		return fmt.Errorf("nothing to do: pass -ticket, -rules, -predict, -chronic and/or -eval-predictor")
	}

	var trace *fot.Trace
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if strings.HasSuffix(*tracePath, ".jsonl") {
			trace, err = fot.ReadJSONL(f)
		} else {
			trace, err = fot.ReadCSV(f)
		}
		if err != nil {
			return err
		}
	} else {
		var profile fleetgen.Profile
		switch *profileName {
		case "small":
			profile = fleetgen.SmallProfile()
		case "paper":
			profile = fleetgen.PaperProfile()
		default:
			return fmt.Errorf("unknown profile %q (want small or paper)", *profileName)
		}
		res, err := fms.Run(profile, fms.DefaultConfig(), *seed)
		if err != nil {
			return err
		}
		trace = res.Trace
	}

	// Render every requested report into memory first: if a later
	// analysis fails, nothing reaches stdout — the command exits
	// non-zero with the error alone, never a truncated report.
	var buf bytes.Buffer
	if *ticketID != 0 {
		ix, err := mine.NewIndex(trace)
		if err != nil {
			return err
		}
		ctx, err := ix.Contextualize(*ticketID)
		if err != nil {
			return err
		}
		if err := report.TicketContext(&buf, ctx); err != nil {
			return err
		}
	}
	if *rules {
		mined, err := mine.MineRules(trace, 24*time.Hour, *minSupport, *minLift)
		if err != nil {
			return err
		}
		if err := report.MiningRules(&buf, mined, 20); err != nil {
			return err
		}
	}
	if *predictFlag {
		eval, err := mine.EvaluateWarningPredictor(trace, *horizon)
		if err != nil {
			return err
		}
		if err := report.PredictorEval(&buf, eval); err != nil {
			return err
		}
	}
	if *chronic {
		top, err := mine.ChronicServers(trace, 15, 3)
		if err != nil {
			return err
		}
		if err := report.ChronicServers(&buf, top); err != nil {
			return err
		}
	}
	_, err := buf.WriteTo(w)
	return err
}

// runEvalPredictor generates one training trace and a set of held-out
// traces, fits the logistic threshold on the training seed, and prints
// the streaming-vs-baseline scorecard (predict.Evaluate / WriteReport).
func runEvalPredictor(w io.Writer, profile fleetgen.Profile, trainSeed int64, seedCSV, horizonCSV string, cuts int) error {
	gen := func(seed int64) (predict.EvalTrace, error) {
		res, err := fms.Run(profile, fms.DefaultConfig(), seed)
		if err != nil {
			return predict.EvalTrace{}, err
		}
		return predict.EvalTrace{
			Name: "seed-" + strconv.FormatInt(seed, 10),
			Ix:   fot.BorrowTraceIndex(res.Trace),
		}, nil
	}

	train, err := gen(trainSeed)
	if err != nil {
		return err
	}
	var held []predict.EvalTrace
	for _, f := range strings.Split(seedCSV, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		seed, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return fmt.Errorf("eval-seeds: %w", err)
		}
		et, err := gen(seed)
		if err != nil {
			return err
		}
		held = append(held, et)
	}
	if len(held) == 0 {
		return fmt.Errorf("eval-seeds: no held-out seeds")
	}

	var horizons []time.Duration
	for _, f := range strings.Split(horizonCSV, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		h, err := time.ParseDuration(f)
		if err != nil {
			return fmt.Errorf("eval-horizons: %w", err)
		}
		horizons = append(horizons, h)
	}

	rep, err := predict.Evaluate(train, held, nil, predict.EvalConfig{Horizons: horizons, Cuts: cuts})
	if err != nil {
		return err
	}
	return predict.WriteReport(w, rep)
}
