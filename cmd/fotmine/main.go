// Command fotmine runs the §VII-B mining layer over a ticket trace: the
// related-information report for a specific ticket, the fleet-wide
// temporal association rules, and the §VII-A early-warning predictor
// scorecard.
//
//	fotmine -trace trace.csv -ticket 1234      # context for one FOT
//	fotmine -trace trace.csv -rules            # association rules
//	fotmine -trace trace.csv -predict -horizon 240h
//	fotmine -profile small -seed 1 -rules      # in-memory trace
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
	"dcfail/internal/fot"
	"dcfail/internal/mine"
	"dcfail/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fotmine:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("fotmine", flag.ContinueOnError)
	profileName := fs.String("profile", "small", "generation profile when no trace file is given: small | paper")
	seed := fs.Int64("seed", 1, "deterministic generation seed")
	tracePath := fs.String("trace", "", "trace file from fotgen (csv or jsonl by extension)")
	ticketID := fs.Uint64("ticket", 0, "print the related-information context for this ticket id")
	rules := fs.Bool("rules", false, "mine temporal association rules")
	predict := fs.Bool("predict", false, "score the warning-based failure predictor")
	chronic := fs.Bool("chronic", false, "rank the worst repeat-flapping servers")
	horizon := fs.Duration("horizon", 10*24*time.Hour, "predictor horizon / rule window scale")
	minSupport := fs.Int("min-support", 3, "rules: minimum supporting servers")
	minLift := fs.Float64("min-lift", 3.0, "rules: minimum temporal lift")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ticketID == 0 && !*rules && !*predict && !*chronic {
		return fmt.Errorf("nothing to do: pass -ticket, -rules, -predict and/or -chronic")
	}

	var trace *fot.Trace
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if strings.HasSuffix(*tracePath, ".jsonl") {
			trace, err = fot.ReadJSONL(f)
		} else {
			trace, err = fot.ReadCSV(f)
		}
		if err != nil {
			return err
		}
	} else {
		var profile fleetgen.Profile
		switch *profileName {
		case "small":
			profile = fleetgen.SmallProfile()
		case "paper":
			profile = fleetgen.PaperProfile()
		default:
			return fmt.Errorf("unknown profile %q (want small or paper)", *profileName)
		}
		res, err := fms.Run(profile, fms.DefaultConfig(), *seed)
		if err != nil {
			return err
		}
		trace = res.Trace
	}

	// Render every requested report into memory first: if a later
	// analysis fails, nothing reaches stdout — the command exits
	// non-zero with the error alone, never a truncated report.
	var buf bytes.Buffer
	if *ticketID != 0 {
		ix, err := mine.NewIndex(trace)
		if err != nil {
			return err
		}
		ctx, err := ix.Contextualize(*ticketID)
		if err != nil {
			return err
		}
		if err := report.TicketContext(&buf, ctx); err != nil {
			return err
		}
	}
	if *rules {
		mined, err := mine.MineRules(trace, 24*time.Hour, *minSupport, *minLift)
		if err != nil {
			return err
		}
		if err := report.MiningRules(&buf, mined, 20); err != nil {
			return err
		}
	}
	if *predict {
		eval, err := mine.EvaluateWarningPredictor(trace, *horizon)
		if err != nil {
			return err
		}
		if err := report.PredictorEval(&buf, eval); err != nil {
			return err
		}
	}
	if *chronic {
		top, err := mine.ChronicServers(trace, 15, 3)
		if err != nil {
			return err
		}
		if err := report.ChronicServers(&buf, top); err != nil {
			return err
		}
	}
	_, err := buf.WriteTo(w)
	return err
}
