package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
)

func TestRunRulesAndPredict(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-profile", "small", "-seed", "6", "-rules", "-predict"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "association rules") {
		t.Errorf("missing rules section:\n%s", out)
	}
	if !strings.Contains(out, "recall") {
		t.Errorf("missing predictor section:\n%s", out)
	}
}

func TestRunTicketContextFromFile(t *testing.T) {
	res, err := fms.Run(fleetgen.SmallProfile(), fms.DefaultConfig(), 6)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-trace", path, "-ticket", "100"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ticket 100:") {
		t.Errorf("missing context:\n%s", buf.String())
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	cases := [][]string{
		{}, // nothing to do
		{"-profile", "bogus", "-rules"},
		{"-trace", "/no/such.csv", "-rules"},
		{"-ticket", "99999999"}, // unknown ticket in generated trace
		{"-wat"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunChronic(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-profile", "small", "-seed", "6", "-chronic"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "chronic servers") {
		t.Errorf("missing chronic section:\n%s", buf.String())
	}
}
