package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// falseAlarmCSV parses cleanly but has no failures: the -ticket context
// renders, then -rules fails with "no failed servers".
const falseAlarmCSV = `id,host_id,hostname,host_idc,rack,position,error_device,error_slot,error_type,error_time,error_detail,category,action,operator,op_time,product_line,deploy_time,model
1,101,h1,idc1,r1,1,hdd,s0,disk_error,2013-01-01T00:00:00Z,,D_falsealarm,none,op,,pl,,m1
2,102,h2,idc1,r2,1,hdd,s0,disk_error,2013-01-02T00:00:00Z,,D_falsealarm,none,op,,pl,,m1
`

func runBinary(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "."}, args...)...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if exit, ok := err.(*exec.ExitError); ok {
		code = exit.ExitCode()
	} else if err != nil {
		t.Fatalf("go run: %v\n%s", err, stderr.String())
	}
	return code, stdout.String(), stderr.String()
}

// TestLateAnalysisErrorLeavesNoPartialOutput is the regression test for
// the truncated-output bug: when -ticket succeeded and a later -rules
// failed, the context used to reach stdout anyway with exit 1. Now a
// failing run must print nothing to stdout.
func TestLateAnalysisErrorLeavesNoPartialOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "falsealarm.csv")
	if err := os.WriteFile(path, []byte(falseAlarmCSV), 0o644); err != nil {
		t.Fatal(err)
	}

	code, stdout, stderr := runBinary(t, "-trace", path, "-ticket", "1", "-rules")
	if code == 0 {
		t.Fatal("want non-zero exit when -rules fails")
	}
	if stdout != "" {
		t.Fatalf("stdout must be empty on failure, got %d bytes:\n%s", len(stdout), stdout)
	}
	if !strings.HasPrefix(stderr, "fotmine: ") {
		t.Fatalf("stderr should lead with the one-line error:\n%s", stderr)
	}

	// The same trace queried for something it can answer still renders.
	code, stdout, _ = runBinary(t, "-trace", path, "-ticket", "1")
	if code != 0 || !strings.Contains(stdout, "ticket 1:") {
		t.Fatalf("healthy query failed: exit %d, stdout:\n%s", code, stdout)
	}
}

// TestCorruptInputFailsCleanly pins the unreadable/corrupt-input
// contract: non-zero exit, empty stdout, leading one-line stderr.
func TestCorruptInputFailsCleanly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.csv")
	if err := os.WriteFile(path, []byte("garbage\nnot,a,trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runBinary(t, "-trace", path, "-rules")
	if code == 0 {
		t.Fatal("want non-zero exit for corrupt input")
	}
	if stdout != "" {
		t.Fatalf("stdout must be empty, got:\n%s", stdout)
	}
	if !strings.HasPrefix(stderr, "fotmine: ") {
		t.Fatalf("stderr should lead with the error line:\n%s", stderr)
	}
}
