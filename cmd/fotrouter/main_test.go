package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestSmokeEndToEnd builds the in-process tier exactly as
// `fotrouter -smoke` does: primary, replication stream, two replicas,
// router; query, kill a replica, query again.
func TestSmokeEndToEnd(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-smoke", "-check-interval", "50ms"}, &out); err != nil {
		t.Fatalf("run -smoke: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "smoke ok") {
		t.Fatalf("no smoke ok line in output:\n%s", out.String())
	}
}

// TestBackendsFlagRequired pins the flag contract.
func TestBackendsFlagRequired(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("want error when -backends is empty without -smoke")
	}
}
