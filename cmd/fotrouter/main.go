// Command fotrouter fronts a fleet of fotqueryd replicas with one
// stable address. It health-checks every backend's /healthz, routes
// each query to the freshest healthy replica, hedges slow attempts,
// fails over on error, and sheds load with 503 + Retry-After when no
// replica can serve.
//
//	fotrouter -listen 127.0.0.1:7090 \
//	    -backends http://10.0.0.2:7080,http://10.0.0.3:7080
//
// Clients that care about epoch monotonicity send `X-Min-Epoch: E`
// (the last X-Epoch they saw); the router only answers from a replica
// at epoch ≥ E. Every response carries X-Served-By and X-Router-Epoch
// (the tier-wide freshness watermark); stale responses from degraded
// replicas add X-Stale and X-Staleness-MS.
//
// -smoke builds a complete in-process tier — a folded primary, a
// replication stream, two syncing replicas, and the router — queries it
// end to end including a replica kill, and exits.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dcfail/internal/core"
	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
	"dcfail/internal/replica"
	"dcfail/internal/router"
	"dcfail/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fotrouter:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("fotrouter", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7090", "HTTP listen address")
	backends := fs.String("backends", "", "comma-separated replica base URLs (required unless -smoke)")
	checkInterval := fs.Duration("check-interval", 250*time.Millisecond, "health-probe period")
	probeTimeout := fs.Duration("probe-timeout", time.Second, "per-probe timeout")
	reqTimeout := fs.Duration("timeout", 5*time.Second, "total per-request budget across retries and hedges")
	hedgeAfter := fs.Duration("hedge-after", 250*time.Millisecond, "hedge onto a second replica after this wait; <0 disables")
	retryAfter := fs.Int("retry-after", 1, "Retry-After seconds sent when shedding")
	smoke := fs.Bool("smoke", false, "self-test: build an in-process tier, query it through the router, exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *smoke {
		return smokeTest(w, *checkInterval, *hedgeAfter)
	}
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		return fmt.Errorf("-backends is required (comma-separated base URLs)")
	}

	rt, err := router.New(router.Options{
		Backends:          urls,
		CheckInterval:     *checkInterval,
		ProbeTimeout:      *probeTimeout,
		RequestTimeout:    *reqTimeout,
		HedgeAfter:        *hedgeAfter,
		RetryAfterSeconds: *retryAfter,
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "fotrouter: routing %d backends on http://%s\n", len(urls), ln.Addr())
	srv := &http.Server{Handler: rt.Handler(), ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		return err
	case s := <-sig:
		fmt.Fprintf(w, "fotrouter: %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
}

// tierReplica is one in-process serving replica for the smoke tier.
type tierReplica struct {
	daemon *serve.Daemon
	syncer *replica.Syncer
	ln     net.Listener
	url    string
}

func startTierReplica(census *core.Census, streamAddr string) (*tierReplica, error) {
	d := serve.New(serve.Options{Census: census, DegradedAfter: 5 * time.Second})
	sy := replica.NewSyncer(d.State(), replica.SyncerOptions{Addr: streamAddr})
	d.SetLagProbe(sy.Lag)
	sy.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		sy.Stop()
		return nil, err
	}
	go d.Serve(ln)
	return &tierReplica{daemon: d, syncer: sy, ln: ln, url: "http://" + ln.Addr().String()}, nil
}

func (r *tierReplica) stop() {
	r.syncer.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	r.daemon.Shutdown(ctx)
}

// smokeTest assembles the full replicated tier in one process: primary
// state, replication stream, two syncing replicas, router. It queries
// through the router, kills a replica, and queries again.
func smokeTest(w io.Writer, checkInterval, hedgeAfter time.Duration) error {
	res, err := fms.Run(fleetgen.SmallProfile(), fms.DefaultConfig(), 1)
	if err != nil {
		return err
	}
	census := core.CensusFromFleet(res.Fleet)

	primary := serve.NewState(census, 0)
	primary.Fold(res.Trace.Tickets, time.Now())
	stream, err := replica.NewServer("127.0.0.1:0", primary, replica.ServerOptions{})
	if err != nil {
		return err
	}
	defer stream.Close()

	var reps []*tierReplica
	for i := 0; i < 2; i++ {
		rep, err := startTierReplica(census, stream.Addr())
		if err != nil {
			return err
		}
		defer rep.stop()
		reps = append(reps, rep)
	}

	rt, err := router.New(router.Options{
		Backends:      []string{reps[0].url, reps[1].url},
		CheckInterval: checkInterval,
		HedgeAfter:    hedgeAfter,
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: rt.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(w, "fotrouter: smoke tier up, router on %s\n", base)

	// Both replicas converge on the primary's epoch.
	want := primary.Current().Epoch()
	deadline := time.Now().Add(60 * time.Second)
	for _, rep := range reps {
		for rep.daemon.State().Current().Epoch() != want {
			if time.Now().After(deadline) {
				return fmt.Errorf("replica %s never converged to epoch %d", rep.url, want)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// A routed query lands on a fresh replica with tier headers.
	resp, body, err := get(base+"/report/table1", want)
	if err != nil {
		return err
	}
	if !strings.Contains(string(body), "Table I") {
		return fmt.Errorf("routed /report/table1 body does not look like Table I:\n%s", body)
	}
	if resp.Header.Get("X-Served-By") == "" || resp.Header.Get("X-Router-Epoch") == "" {
		return fmt.Errorf("routed response missing tier headers: %v", resp.Header)
	}

	// The streaming predictor serves through the router too, with the
	// epoch-bearing header intact.
	resp, body, err = get(base+"/atrisk?n=3", want)
	if err != nil {
		return err
	}
	var atRisk serve.AtRiskReply
	if err := json.Unmarshal(body, &atRisk); err != nil {
		return fmt.Errorf("routed /atrisk: %w", err)
	}
	if len(atRisk.Hosts) == 0 || atRisk.Epoch != want {
		return fmt.Errorf("routed /atrisk not settled at epoch %d: %s", want, body)
	}
	if resp.Header.Get("X-Epoch") != fmt.Sprint(want) {
		return fmt.Errorf("routed /atrisk X-Epoch %q, want %d", resp.Header.Get("X-Epoch"), want)
	}

	// Kill the replica that served it; the router fails over.
	killed := resp.Header.Get("X-Served-By")
	for _, rep := range reps {
		if rep.url == killed {
			rep.stop()
		}
	}
	if _, body, err = get(base+"/report/table1", want); err != nil {
		return fmt.Errorf("after replica kill: %w", err)
	}
	if !strings.Contains(string(body), "Table I") {
		return fmt.Errorf("failover response body does not look like Table I")
	}

	// /router/status reflects the tier.
	_, body, err = get(base+"/router/status", 0)
	if err != nil {
		return err
	}
	var status router.Status
	if err := json.Unmarshal(body, &status); err != nil {
		return fmt.Errorf("/router/status: %w", err)
	}
	if len(status.Backends) != 2 || status.Watermark < want {
		return fmt.Errorf("status not settled: %+v", status)
	}
	fmt.Fprintf(w, "fotrouter: smoke ok — watermark %d, %d requests, %d failovers after kill\n",
		status.Watermark, status.Requests, status.Failovers)
	return nil
}

func get(url string, minEpoch uint64) (*http.Response, []byte, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, nil, err
	}
	if minEpoch > 0 {
		req.Header.Set("X-Min-Epoch", fmt.Sprint(minEpoch))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return resp, body, nil
}
