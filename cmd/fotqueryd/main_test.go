package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
)

// TestSmokeEndToEnd runs the daemon exactly as `fotqueryd -smoke` does:
// generate, serve on a loopback port, query the API, drain, exit.
func TestSmokeEndToEnd(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-smoke", "-seed", "3"}, &out); err != nil {
		t.Fatalf("run -smoke: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "smoke ok") {
		t.Fatalf("no smoke ok line in output:\n%s", out.String())
	}
}

// TestSmokeServesTraceFileRejected pins the flag contract: -smoke owns
// its trace, and the three source flags are mutually exclusive.
func TestSourceFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-smoke", "-trace", "x.csv"}, &out); err == nil {
		t.Fatal("want error for -smoke with -trace")
	}
	if err := run([]string{"-trace", "x.csv", "-archive", "y"}, &out); err == nil {
		t.Fatal("want error for -trace with -archive")
	}
	if err := run([]string{"-profile", "galactic"}, &out); err == nil {
		t.Fatal("want error for unknown profile")
	}
	if err := run([]string{"-sync", "127.0.0.1:7075", "-trace", "x.csv"}, &out); err == nil {
		t.Fatal("want error for -sync with a local ticket source")
	}
	if err := run([]string{"-sync", "127.0.0.1:7075", "-smoke"}, &out); err == nil {
		t.Fatal("want error for -sync with -smoke")
	}
}

// TestFrozenTraceFileMode serves a trace written to disk and smoke-tests
// it through the same in-process path (listen on :0, query, shut down) —
// the loadTrace + topo.Build census branch.
func TestFrozenTraceFileMode(t *testing.T) {
	res, err := fms.Run(fleetgen.SmallProfile(), fms.DefaultConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Reuse the smoke harness against the file-backed source by driving
	// run's pieces directly: loadTrace must round-trip the ticket count.
	trace, err := loadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Len() != res.Trace.Len() {
		t.Fatalf("loadTrace: %d tickets, want %d", trace.Len(), res.Trace.Len())
	}
}
