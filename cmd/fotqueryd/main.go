// Command fotqueryd is the live analytics daemon: it keeps the paper's
// full statistics warm over a growing ticket trace and answers HTTP
// queries while tickets stream in.
//
// Pick exactly one ticket source (or none, to generate and serve a
// frozen trace in memory):
//
//	fotqueryd -listen 127.0.0.1:7080
//	    Generate the -profile/-seed trace and serve it frozen.
//
//	fotqueryd -trace trace.csv
//	    Serve a trace file written by fotgen, frozen.
//
//	fotqueryd -archive /var/lib/fms
//	    Tail an archive directory that fmsd is writing; new segments
//	    are folded into the live report as they appear.
//
//	fotqueryd -collect 127.0.0.1:7070
//	    Run an embedded collector: agents report to -collect, every
//	    accepted ticket folds into the live report.
//
//	fotqueryd -sync 10.0.0.1:7075
//	    Run as a read-only serving replica: follow a primary's
//	    replication stream (its -replicate address) instead of
//	    ingesting tickets directly.
//
// Any mode may add -replicate ADDR to publish its epoch history to
// replicas, and -degraded-after D to make /healthz report degraded
// (HTTP 503) when the source lag exceeds D — the failover signal
// cmd/fotrouter keys on.
//
// The census the population-normalized sections need is rebuilt
// deterministically from (-profile, -seed), which must match the
// trace's generator.
//
// Query it:
//
//	curl localhost:7080/report?sections=table1,fig5
//	curl localhost:7080/report/table4
//	curl localhost:7080/hosts/1234
//	curl localhost:7080/alerts
//	curl localhost:7080/stats
//
// -smoke starts the daemon on a loopback port, serves the generated
// trace, queries its own API once end to end, and exits — used by the
// Makefile's serve-smoke target.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dcfail/internal/archive"
	"dcfail/internal/archive/segment"
	"dcfail/internal/core"
	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
	"dcfail/internal/fmsnet"
	"dcfail/internal/fot"
	"dcfail/internal/replica"
	"dcfail/internal/serve"
	"dcfail/internal/topo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fotqueryd:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("fotqueryd", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7080", "HTTP listen address")
	profileName := fs.String("profile", "small", "fleet profile for the census: small | paper")
	seed := fs.Int64("seed", 1, "deterministic fleet seed (must match the trace's generator)")
	tracePath := fs.String("trace", "", "serve a frozen trace file (csv, jsonl, or fotseg by extension)")
	archiveDir := fs.String("archive", "", "tail an fmsd archive directory for new tickets")
	collectAddr := fs.String("collect", "", "run an embedded collector on this address and ingest its tickets")
	syncAddr := fs.String("sync", "", "run as a read-only replica: follow this primary replication address")
	syncCodec := fs.String("sync-codec", "binary", "replication stream codec: binary (negotiated, falls back) or json (forced legacy)")
	replicateAddr := fs.String("replicate", "", "publish this daemon's epoch history to replicas on this address")
	degradedAfter := fs.Duration("degraded-after", 0, "report /healthz degraded once source lag exceeds this; 0 = never")
	subBuffer := fs.Int("sub-buffer", 4096, "collector subscription buffer; overflow is dropped and counted")
	pollInterval := fs.Duration("poll-interval", 500*time.Millisecond, "archive re-poll interval while idle")
	foldInterval := fs.Duration("fold-interval", 200*time.Millisecond, "max delay before pending tickets fold into a new epoch")
	foldBatch := fs.Int("fold-batch", 8192, "fold early once this many tickets are pending")
	workers := fs.Int("workers", 0, "parallel section workers; 0 = one per CPU")
	maxConcurrent := fs.Int("max-concurrent", 64, "max in-flight HTTP requests")
	reqTimeout := fs.Duration("timeout", 30*time.Second, "per-request timeout")
	alertWindow := fs.Duration("alert-window", 3*time.Hour, "batch alert sliding window")
	alertThreshold := fs.Int("alert-threshold", 20, "batch alert distinct-server threshold")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this extra address (e.g. 127.0.0.1:6060); empty = disabled")
	smoke := fs.Bool("smoke", false, "self-test: serve a generated trace on a loopback port, query the API, exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	nsrc := 0
	for _, set := range []bool{*tracePath != "", *archiveDir != "", *collectAddr != ""} {
		if set {
			nsrc++
		}
	}
	if nsrc > 1 {
		return fmt.Errorf("-trace, -archive and -collect are mutually exclusive")
	}
	if *smoke && nsrc > 0 {
		return fmt.Errorf("-smoke generates its own trace; drop -trace/-archive/-collect")
	}
	if *syncAddr != "" && (nsrc > 0 || *smoke) {
		return fmt.Errorf("-sync replaces local ingest; drop -trace/-archive/-collect/-smoke")
	}

	var profile fleetgen.Profile
	switch *profileName {
	case "small":
		profile = fleetgen.SmallProfile()
	case "paper":
		profile = fleetgen.PaperProfile()
	default:
		return fmt.Errorf("unknown profile %q (want small or paper)", *profileName)
	}

	// Census plus the ticket source. The generate and -trace modes are
	// finite: the daemon drains them and keeps serving the frozen epoch.
	var census *core.Census
	var src serve.TicketSource
	var sub *fmsnet.TicketSub
	var collector *fmsnet.Collector
	switch {
	case *syncAddr != "":
		// Replica mode: no local ticket source — rows arrive over the
		// primary's replication stream and fold under its epoch numbers.
		fleet, err := topo.Build(profile.FleetSpec, *seed)
		if err != nil {
			return err
		}
		census = core.CensusFromFleet(fleet)
	case *tracePath != "":
		trace, err := loadTrace(*tracePath)
		if err != nil {
			return err
		}
		fleet, err := topo.Build(profile.FleetSpec, *seed)
		if err != nil {
			return err
		}
		census = core.CensusFromFleet(fleet)
		src = serve.FromTrace(trace, 0)
	case *archiveDir != "":
		fleet, err := topo.Build(profile.FleetSpec, *seed)
		if err != nil {
			return err
		}
		census = core.CensusFromFleet(fleet)
		src = serve.TailArchive(*archiveDir, archive.Position{}, *pollInterval)
	case *collectAddr != "":
		fleet, err := topo.Build(profile.FleetSpec, *seed)
		if err != nil {
			return err
		}
		census = core.CensusFromFleet(fleet)
		c, err := fmsnet.NewCollector(*collectAddr)
		if err != nil {
			return err
		}
		collector = c
		sub = c.SubscribeTickets(*subBuffer)
		src = serve.FromChannel(sub.C())
		fmt.Fprintf(w, "fotqueryd: collecting on %s\n", c.Addr())
	default:
		res, err := fms.Run(profile, fms.DefaultConfig(), *seed)
		if err != nil {
			return err
		}
		census = core.CensusFromFleet(res.Fleet)
		src = serve.FromTrace(res.Trace, 0)
	}

	opts := serve.Options{
		Census:         census,
		Workers:        *workers,
		FoldInterval:   *foldInterval,
		FoldBatch:      *foldBatch,
		MaxConcurrent:  *maxConcurrent,
		RequestTimeout: *reqTimeout,
		AlertWindow:    *alertWindow,
		AlertThreshold: *alertThreshold,
		DegradedAfter:  *degradedAfter,
	}
	if sub != nil {
		opts.SourceDrops = sub.Dropped
	}
	d := serve.New(opts)
	var syncer *replica.Syncer
	if *syncAddr != "" {
		// Replica mode: the syncer is the ticket source, and /healthz
		// measures replication lag instead of pending-queue lag.
		syncer = replica.NewSyncer(d.State(), replica.SyncerOptions{Addr: *syncAddr, Codec: *syncCodec})
		d.SetLagProbe(syncer.Lag)
		syncer.Start()
		fmt.Fprintf(w, "fotqueryd: syncing from %s\n", *syncAddr)
	} else {
		d.StartIngest(src)
	}
	var stream *replica.Server
	if *replicateAddr != "" {
		s, err := replica.NewServer(*replicateAddr, d.State(), replica.ServerOptions{})
		if err != nil {
			return err
		}
		stream = s
		fmt.Fprintf(w, "fotqueryd: replicating on %s\n", stream.Addr())
	}

	addr := *listen
	if *smoke {
		addr = "127.0.0.1:0" // hermetic: never fight over a fixed port
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "fotqueryd: serving on http://%s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- d.Serve(ln) }()

	// The profiling endpoint is opt-in and lives on its own listener and
	// mux: the query API's address never exposes /debug/pprof/, and the
	// daemon's concurrency limiter cannot throttle a profile grab.
	profAddr := *pprofAddr
	if *smoke {
		profAddr = "127.0.0.1:0"
	}
	var pprofSrv *http.Server
	pprofURL := ""
	if profAddr != "" {
		pln, err := net.Listen("tcp", profAddr)
		if err != nil {
			return err
		}
		pprofSrv = &http.Server{Handler: pprofMux()}
		go pprofSrv.Serve(pln)
		pprofURL = "http://" + pln.Addr().String()
		fmt.Fprintf(w, "fotqueryd: pprof on %s/debug/pprof/\n", pprofURL)
	}

	shutdown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if sub != nil {
			sub.Close()
		}
		if syncer != nil {
			syncer.Stop()
		}
		if stream != nil {
			stream.Close()
		}
		if pprofSrv != nil {
			pprofSrv.Shutdown(ctx)
		}
		var cerr error
		if collector != nil {
			cerr = collector.Close()
		}
		if err := d.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-serveErr; err != nil && err != http.ErrServerClosed {
			return err
		}
		return cerr
	}

	if *smoke {
		if err := smokeTest(w, d, "http://"+ln.Addr().String(), pprofURL); err != nil {
			shutdown()
			return fmt.Errorf("smoke: %w", err)
		}
		return shutdown()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		return err
	case s := <-sig:
		fmt.Fprintf(w, "fotqueryd: %v, draining\n", s)
		return shutdown()
	}
}

// pprofMux builds the standalone profiling mux. net/http/pprof's import
// side effect registers on http.DefaultServeMux, which the daemon never
// serves; this mux wires the same handlers onto the dedicated listener.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return mux
}

// smokeTest exercises the daemon's own API end to end: wait for the
// generated trace to drain, then hit /healthz, one report section,
// /stats and the pprof sidecar, sanity-checking each reply.
func smokeTest(w io.Writer, d *serve.Daemon, base, pprofURL string) error {
	deadline := time.Now().Add(60 * time.Second)
	for !d.Drained() {
		if time.Now().After(deadline) {
			return fmt.Errorf("ingest did not drain within 60s")
		}
		time.Sleep(10 * time.Millisecond)
	}

	body, err := get(base + "/healthz")
	if err != nil {
		return err
	}
	var health serve.HealthReply
	if err := json.Unmarshal(body, &health); err != nil {
		return fmt.Errorf("/healthz: %w", err)
	}
	if health.Status != serve.HealthOK {
		return fmt.Errorf("/healthz said %q, want %q", health.Status, serve.HealthOK)
	}

	body, err = get(base + "/report/table1")
	if err != nil {
		return err
	}
	if !strings.Contains(string(body), "Table I") {
		return fmt.Errorf("/report/table1 body does not look like Table I:\n%s", body)
	}

	body, err = get(base + "/stats")
	if err != nil {
		return err
	}
	var stats serve.StatsReply
	if err := json.Unmarshal(body, &stats); err != nil {
		return fmt.Errorf("/stats: %w", err)
	}
	if stats.Epoch == 0 || stats.Tickets == 0 || !stats.Drained {
		return fmt.Errorf("/stats not settled: epoch=%d tickets=%d drained=%v",
			stats.Epoch, stats.Tickets, stats.Drained)
	}
	if stats.Predict.Hosts == 0 || stats.Predict.Epoch != stats.Epoch {
		return fmt.Errorf("/stats predictor not settled: %+v against epoch %d", stats.Predict, stats.Epoch)
	}

	// The streaming predictor: rank the fleet, then score the top host.
	body, err = get(base + "/atrisk?n=3")
	if err != nil {
		return err
	}
	var atRisk serve.AtRiskReply
	if err := json.Unmarshal(body, &atRisk); err != nil {
		return fmt.Errorf("/atrisk: %w", err)
	}
	if len(atRisk.Hosts) == 0 || atRisk.Model == "" {
		return fmt.Errorf("/atrisk returned no ranked hosts: %s", body)
	}
	body, err = get(fmt.Sprintf("%s/predict/%d", base, atRisk.Hosts[0].Host))
	if err != nil {
		return err
	}
	var pred serve.PredictReply
	if err := json.Unmarshal(body, &pred); err != nil {
		return fmt.Errorf("/predict: %w", err)
	}
	if pred.Score != atRisk.Hosts[0].Score {
		return fmt.Errorf("/predict score %v disagrees with /atrisk rank 0 score %v",
			pred.Score, atRisk.Hosts[0].Score)
	}

	if pprofURL != "" {
		body, err = get(pprofURL + "/debug/pprof/cmdline")
		if err != nil {
			return err
		}
		if len(body) == 0 {
			return fmt.Errorf("pprof /debug/pprof/cmdline returned an empty body")
		}
	}

	fmt.Fprintf(w, "fotqueryd: smoke ok — epoch %d, %d tickets, cache %d/%d hits, top risk host %d (%.3f)\n",
		stats.Epoch, stats.Tickets, stats.CacheHits, stats.CacheHits+stats.CacheMisses,
		atRisk.Hosts[0].Host, atRisk.Hosts[0].Score)
	return nil
}

func get(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}

func loadTrace(path string) (*fot.Trace, error) {
	if strings.HasSuffix(path, ".fotseg") {
		// A columnar archive segment: validated (footer + per-block CRCs)
		// and decoded without replay.
		tickets, _, err := segment.Read(path)
		if err != nil {
			return nil, err
		}
		return fot.NewTrace(tickets), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".jsonl") {
		return fot.ReadJSONL(f)
	}
	return fot.ReadCSV(f)
}
