// Command fotgen generates a synthetic failure-operation-ticket trace with
// the dcfail simulator and writes it to CSV or JSON-lines.
//
// Usage:
//
//	fotgen -profile small -seed 1 -format csv -out trace.csv
//	fotgen -profile paper -seed 42 -format jsonl -out trace.jsonl
//
// The same (profile, seed) pair always produces the same trace, so
// downstream tools (fotreport) can rebuild the matching fleet census
// deterministically.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dcfail/internal/archive"
	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fotgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fotgen", flag.ContinueOnError)
	profileName := fs.String("profile", "small", "generation profile: small | paper")
	seed := fs.Int64("seed", 1, "deterministic generation seed")
	format := fs.String("format", "csv", "output format: csv | jsonl")
	out := fs.String("out", "", "output file (default stdout)")
	archiveDir := fs.String("archive", "", "write into a segmented ticket archive directory instead of a flat file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	profile, err := profileByName(*profileName)
	if err != nil {
		return err
	}
	res, err := fms.Run(profile, fms.DefaultConfig(), *seed)
	if err != nil {
		return err
	}
	if *archiveDir != "" {
		arch, err := archive.Open(*archiveDir, 0)
		if err != nil {
			return err
		}
		if err := arch.AppendTrace(res.Trace); err != nil {
			arch.Close()
			return err
		}
		if err := arch.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fotgen: archived %d tickets into %s (%d segments)\n",
			res.Trace.Len(), *archiveDir, len(arch.Segments()))
		return nil
	}
	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}
	switch *format {
	case "csv":
		err = res.Trace.WriteCSV(w)
	case "jsonl":
		err = res.Trace.WriteJSONL(w)
	default:
		return fmt.Errorf("unknown format %q (want csv or jsonl)", *format)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fotgen: %d tickets from %d servers (profile %s, seed %d)\n",
		res.Trace.Len(), res.Fleet.NumServers(), profile.Name, *seed)
	return nil
}

func profileByName(name string) (fleetgen.Profile, error) {
	switch name {
	case "small":
		return fleetgen.SmallProfile(), nil
	case "paper":
		return fleetgen.PaperProfile(), nil
	default:
		return fleetgen.Profile{}, fmt.Errorf("unknown profile %q (want small or paper)", name)
	}
}
