package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dcfail/internal/archive"
	"dcfail/internal/fot"
)

func TestRunWritesCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.csv")
	if err := run([]string{"-profile", "small", "-seed", "3", "-out", out}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := fot.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() < 1000 {
		t.Errorf("trace has only %d tickets", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRunWritesJSONLToStdout(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-profile", "small", "-seed", "3", "-format", "jsonl"}, &buf); err != nil {
		t.Fatal(err)
	}
	tr, err := fot.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() < 1000 {
		t.Errorf("trace has only %d tickets", tr.Len())
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-seed", "9", "-format", "csv"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-seed", "9", "-format", "csv"}, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same seed produced different output")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-profile", "bogus"},
		{"-format", "xml"},
		{"-out", filepath.Join(t.TempDir(), "no", "such", "dir", "x.csv")},
		{"-badflag"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunArchiveMode(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "arch")
	if err := run([]string{"-profile", "small", "-seed", "3", "-archive", dir}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	a, err := archive.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := a.Query(time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() < 1000 {
		t.Errorf("archive holds only %d tickets", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}
