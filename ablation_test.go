package dcfail

// Ablation studies: each test switches off one mechanism the paper blames
// for a finding and checks the finding weakens or disappears — evidence
// that the simulator reproduces the paper through the claimed causes
// rather than by accident.

import (
	"testing"

	"dcfail/internal/core"
	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
	"dcfail/internal/fot"
	"dcfail/internal/inject"
)

// TestAblationWorkloadGate: the paper attributes Hypotheses 1–2 (failures
// not uniform over weekdays/hours) to workload-gated, log-based detection.
// Miscellaneous tickets are the cleanest probe — they are human-filed and
// carry no batch-window structure.
func TestAblationWorkloadGate(t *testing.T) {
	run := func(gate bool) *core.HourOfDayResult {
		p := fleetgen.SmallProfile()
		p.WorkloadGate = gate
		res, err := fms.Run(p, fms.DefaultConfig(), 321)
		if err != nil {
			t.Fatal(err)
		}
		hod, err := core.HourOfDay(res.Trace, fot.Misc)
		if err != nil {
			t.Fatal(err)
		}
		return hod
	}
	gated := run(true)
	flat := run(false)
	if !gated.Test.Reject(0.01) {
		t.Errorf("with the gate, H2 should be rejected: %v", gated.Test)
	}
	if flat.Test.Reject(0.01) {
		t.Errorf("without the gate, H2 should not be rejected: %v", flat.Test)
	}
	t.Logf("hour-of-day X²: gated %.0f vs ungated %.0f", gated.Test.Stat, flat.Test.Stat)
}

// TestAblationBatchFailures: the paper blames the TBF's failure to fit
// any classic distribution (Hypothesis 3) on batch failures. Removing the
// batch injectors must shrink the exponential misfit dramatically and
// empty Table V.
func TestAblationBatchFailures(t *testing.T) {
	run := func(withBatch bool) (*core.TBFResult, *core.BatchFrequencyResult) {
		p := fleetgen.SmallProfile()
		if !withBatch {
			p.NewInjectors = func() []inject.Injector { return nil }
		}
		res, err := fms.Run(p, fms.DefaultConfig(), 654)
		if err != nil {
			t.Fatal(err)
		}
		tbf, err := core.TBFAnalysis(res.Trace, 0)
		if err != nil {
			t.Fatal(err)
		}
		bf, err := core.BatchFrequency(res.Trace, []int{10})
		if err != nil {
			t.Fatal(err)
		}
		return tbf, bf
	}
	withBatch, bfWith := run(true)
	noBatch, bfNo := run(false)

	ksWith := fitKS(t, withBatch, "exponential")
	ksNo := fitKS(t, noBatch, "exponential")
	t.Logf("exponential KS: with batches %.4f, without %.4f", ksWith, ksNo)
	if !(ksNo < ksWith*0.55) {
		t.Errorf("removing batches should slash the exponential misfit: %.4f -> %.4f", ksWith, ksNo)
	}

	// Calibration reallocates the whole HDD budget to the baseline when
	// batches are off, so daily counts still clear low thresholds from
	// Poisson noise; the batch signature is the drop, not a zero.
	r10With := batchR(bfWith, fot.HDD, 10)
	r10No := batchR(bfNo, fot.HDD, 10)
	t.Logf("HDD r10: with batches %.3f, without %.3f", r10With, r10No)
	if !(r10No < r10With*0.75) {
		t.Errorf("batch days should drop without injection: %.3f -> %.3f", r10With, r10No)
	}
}

// TestAblationPerfectRepair: §III-D and §V-C blame repeating and
// synchronized failures on ineffective repairs. With perfect repair
// (no organic recurrences, no planted repeat groups) the repeat
// statistics and the per-server concentration must collapse.
func TestAblationPerfectRepair(t *testing.T) {
	run := func(perfect bool) (*core.RepeatResult, *core.ServerSkewResult) {
		p := fleetgen.SmallProfile()
		cfg := fms.DefaultConfig()
		if perfect {
			cfg.RepeatProb = 0
			p.NewInjectors = func() []inject.Injector {
				return []inject.Injector{
					&inject.HDDBatch{
						MeanLog: 1.2, SigmaLog: 1.0, MinSize: 6, MaxCohortFrac: 0.6,
						AgeWeight: inject.DefaultHDDAgeWeight,
					},
					&inject.PDUOutage{RatePerYear: 3, ServersPerPDU: 30, FanFollowProb: 0.07},
					&inject.CorrelatedPairs{RatePer10kServerYears: 85, Weights: inject.TableVIWeights()},
				}
			}
		}
		res, err := fms.Run(p, cfg, 987)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := core.RepeatAnalysis(res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		sk, err := core.ServerSkew(res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		return rep, sk
	}
	baseRep, baseSkew := run(false)
	perfRep, perfSkew := run(true)

	// Same-slot batch re-hits still register as repeats under the paper's
	// metric, so the fraction drops rather than vanishes.
	t.Logf("repeat-server fraction: baseline %.4f, perfect repair %.4f",
		baseRep.RepeatServerFraction, perfRep.RepeatServerFraction)
	if !(perfRep.RepeatServerFraction < baseRep.RepeatServerFraction*0.9) {
		t.Error("perfect repair should reduce the repeat-server fraction")
	}
	if !(perfRep.NeverRepeatFraction > baseRep.NeverRepeatFraction) {
		t.Error("perfect repair should raise the never-repeat fraction")
	}
	t.Logf("busiest server tickets: baseline %d, perfect repair %d",
		baseSkew.MaxOneServer, perfSkew.MaxOneServer)
	if perfSkew.MaxOneServer >= 100 {
		t.Errorf("chronic server survived perfect repair: %d tickets", perfSkew.MaxOneServer)
	}
	if !(perfSkew.TopShare[0.02] < baseSkew.TopShare[0.02]) {
		t.Error("perfect repair should thin the Fig. 7 tail")
	}
}

func fitKS(t *testing.T, r *core.TBFResult, family string) float64 {
	t.Helper()
	for _, f := range r.Fits {
		if f.Dist.Name() == family {
			if f.Err != nil {
				t.Fatalf("%s fit failed: %v", family, f.Err)
			}
			return f.KS
		}
	}
	t.Fatalf("no %s fit in result", family)
	return 0
}

func batchR(bf *core.BatchFrequencyResult, c fot.Component, th int) float64 {
	for _, row := range bf.Rows {
		if row.Component == c {
			return row.R[th]
		}
	}
	return 0
}

// TestAblationWarranty: Table I's D_error share is not a free parameter —
// it emerges from warranty expiry meeting the fleet's age mix. Extending
// the warranty must shrink it.
func TestAblationWarranty(t *testing.T) {
	share := func(years int) float64 {
		p := fleetgen.SmallProfile()
		p.FleetSpec.WarrantyYears = years
		res, err := fms.Run(p, fms.DefaultConfig(), 111)
		if err != nil {
			t.Fatal(err)
		}
		counts := res.Trace.CountByCategory()
		return float64(counts[fot.Error]) / float64(res.Trace.Len())
	}
	short := share(2)
	long := share(5)
	t.Logf("D_error share: 2y warranty %.3f, 5y warranty %.3f", short, long)
	if !(long < short*0.7) {
		t.Errorf("longer warranty should slash the out-of-warranty share: %.3f -> %.3f", short, long)
	}
}

// TestAblationCoverageRamp: rolling the FMS out during the window (the
// paper's §VIII limitation) suppresses early-window tickets, bending the
// yearly trend — the reason the paper cautions about cross-year claims.
func TestAblationCoverageRamp(t *testing.T) {
	firstYearShare := func(cfg fms.Config) float64 {
		res, err := fms.Run(fleetgen.SmallProfile(), cfg, 222)
		if err != nil {
			t.Fatal(err)
		}
		lo, _, _ := res.Trace.Span()
		early := res.Trace.Between(lo, lo.AddDate(1, 0, 0)).Len()
		return float64(early) / float64(res.Trace.Len())
	}
	full := firstYearShare(fms.DefaultConfig())
	ramp := fms.DefaultConfig()
	ramp.CoverageStart, ramp.CoverageEnd = 0.4, 1.0
	partial := firstYearShare(ramp)
	t.Logf("first-year ticket share: full coverage %.3f, rollout %.3f", full, partial)
	if !(partial < full) {
		t.Error("coverage rollout should starve the first year")
	}
}
