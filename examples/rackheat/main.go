// Rackheat reproduces the paper's §IV spatial study: Hypothesis 5 tests
// per datacenter (Table IV), Fig. 8-style per-position failure ratios for
// an old and a modern facility, and the μ±2σ anomaly detection that found
// the hot spots at rack positions 22 and 35 in the paper's datacenter A.
package main

import (
	"fmt"
	"log"
	"os"

	"dcfail/internal/core"
	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
	"dcfail/internal/report"
)

func main() {
	res, err := fms.Run(fleetgen.SmallProfile(), fms.DefaultConfig(), 314)
	if err != nil {
		log.Fatal(err)
	}
	census := core.CensusFromFleet(res.Fleet)

	ra, err := core.RackAnalysis(res.Trace, census)
	if err != nil {
		log.Fatal(err)
	}
	if err := report.RackAnalysis(os.Stdout, ra); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// dc01 plays the paper's "datacenter A" (spot anomalies under an
	// otherwise even profile); dc02 its "datacenter B" (a broad
	// under-floor-cooling gradient rejected outright). For the modern
	// contrast, show the facility where Hypothesis 5 holds best.
	bestModern, bestP := "", -1.0
	for i := range ra.PerDC {
		dc := &ra.PerDC[i]
		if dc.BuiltYear >= 2014 && dc.Test.P > bestP {
			bestModern, bestP = dc.IDC, dc.Test.P
		}
	}
	for _, idc := range []string{"dc01", "dc02", bestModern} {
		rp, err := core.RackPositions(res.Trace, census, idc)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.RackPositions(os.Stdout, rp); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	fmt.Println("=> avoid \"bad spots\": never place all replicas of a service at the")
	fmt.Println("   same vulnerable rack position (paper §VII discussion)")
}
