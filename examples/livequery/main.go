// Livequery runs the live analytics loop end to end in one process: a
// collector accepts agent failure reports over real TCP, every accepted
// ticket streams through a collector subscription into the fotqueryd
// ingest engine, and an HTTP client queries the evolving report WHILE
// tickets are still arriving — each response is one self-consistent
// epoch, stamped with X-Epoch/X-Tickets headers, and the final epoch
// matches what a batch run over the same tickets would print.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"dcfail/internal/core"
	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
	"dcfail/internal/fmsnet"
	"dcfail/internal/fot"
	"dcfail/internal/serve"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Simulate the trace the agent will replay; one month keeps the
	// wire traffic short.
	res, err := fms.Run(fleetgen.SmallProfile(), fms.DefaultConfig(), 99)
	if err != nil {
		return err
	}
	month := res.Trace.Between(
		time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC),
	)
	fmt.Printf("replaying %d tickets through the live query pipeline\n", month.Len())

	// 2. Collector on an ephemeral port, with a ticket subscription:
	// every accepted report is handed to the daemon's ingest loop in
	// pool order, without ever blocking the agent's acks.
	collector, err := fmsnet.NewCollector("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer collector.Close()
	sub := collector.SubscribeTickets(4096)

	// 3. The query daemon folds the subscription into live epochs.
	d := serve.New(serve.Options{
		Census:       core.CensusFromFleet(res.Fleet),
		FoldInterval: 50 * time.Millisecond,
		SourceDrops:  sub.Dropped,
	})
	d.StartIngest(serve.FromChannel(sub.C()))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go d.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("fotqueryd api on %s\n", base)

	// 4. One agent replays the month; the main goroutine queries the
	// API mid-stream after each third of the trace.
	reports := make(chan *fmsnet.Report, 64)
	agentDone := make(chan error, 1)
	go func() {
		_, err := fmsnet.RunAgent(collector.Addr(), reports, fmsnet.DefaultAgentConfig())
		agentDone <- err
	}()
	third := (month.Len() + 2) / 3
	for i, tk := range month.Tickets {
		reports <- &fmsnet.Report{
			HostID: tk.HostID, Hostname: tk.Hostname, IDC: tk.IDC,
			Rack: tk.Rack, Position: tk.Position,
			Device: tk.Device.String(), Slot: tk.Slot, Type: tk.Type,
			Time: tk.Time, Detail: tk.Detail,
			ProductLine: tk.ProductLine, DeployTime: tk.DeployTime,
			Model:      tk.Model,
			InWarranty: tk.Category != fot.Error,
		}
		if (i+1)%third == 0 {
			time.Sleep(120 * time.Millisecond) // let a fold land
			if err := printStats(base, fmt.Sprintf("after %d reports", i+1)); err != nil {
				return err
			}
		}
	}
	close(reports)
	if err := <-agentDone; err != nil {
		return err
	}

	// 5. Wait for the tail to fold, then query the settled state: one
	// report section, the context of a live host, and the stats line.
	deadline := time.Now().Add(10 * time.Second)
	for d.State().Current().Tickets() < month.Len() && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	body, err := get(base + "/report/table1")
	if err != nil {
		return err
	}
	fmt.Printf("\n%s", body)
	host := month.Tickets[0].HostID
	body, err = get(fmt.Sprintf("%s/hosts/%d", base, host))
	if err != nil {
		return err
	}
	var hostReply struct {
		Tickets     []json.RawMessage `json:"tickets"`
		SlotRepeats int               `json:"slot_repeats"`
	}
	if err := json.Unmarshal(body, &hostReply); err != nil {
		return err
	}
	fmt.Printf("\nhost %d: %d tickets on record, %d slot repeats\n",
		host, len(hostReply.Tickets), hostReply.SlotRepeats)
	if err := printStats(base, "final"); err != nil {
		return err
	}

	// 6. Drain: collector down, daemon folds what is pending and stops.
	sub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return d.Shutdown(ctx)
}

func printStats(base, label string) error {
	body, err := get(base + "/stats")
	if err != nil {
		return err
	}
	var st serve.StatsReply
	if err := json.Unmarshal(body, &st); err != nil {
		return err
	}
	fmt.Printf("%-18s epoch %-3d %5d tickets folded, cache %d/%d hits\n",
		label+":", st.Epoch, st.Tickets, st.CacheHits, st.CacheHits+st.CacheMisses)
	return nil
}

func get(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, body)
	}
	return body, nil
}
