// Opsresponse reproduces the paper's §VI operator study: the Fig. 9
// response-time distribution, the Fig. 10 per-class medians (SSD and misc
// in hours, mechanical parts in weeks), and the Fig. 11 product-line
// anti-correlation — the busiest, most fault-tolerant lines respond the
// slowest.
package main

import (
	"fmt"
	"log"
	"os"

	"dcfail/internal/core"
	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
	"dcfail/internal/fot"
	"dcfail/internal/report"
)

func main() {
	res, err := fms.Run(fleetgen.SmallProfile(), fms.DefaultConfig(), 99)
	if err != nil {
		log.Fatal(err)
	}

	// Fig. 9: RT distribution per closed-ticket category.
	for _, cat := range []fot.Category{fot.Fixing, fot.FalseAlarm} {
		rt, err := core.ResponseTimes(res.Trace, cat)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.ResponseTimes(os.Stdout, cat.String(), rt); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	// Fig. 10: which classes get fast responses?
	byClass, err := core.ResponseTimesByClass(res.Trace)
	if err != nil {
		log.Fatal(err)
	}
	if err := report.ResponseTimesByClass(os.Stdout, byClass); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// Fig. 11: per product line. The paper's counter-intuitive finding —
	// median RT does not grow with failure count; it is the opposite.
	plrt, err := core.ProductLineRT(res.Trace, fot.HDD)
	if err != nil {
		log.Fatal(err)
	}
	if err := report.ProductLineRT(os.Stdout, plrt, 12); err != nil {
		log.Fatal(err)
	}

	// Tie it back to the mechanism: group lines by fault-tolerance tier.
	tierOf := map[string]string{}
	for _, pl := range res.Fleet.Lines {
		tierOf[pl.Name] = pl.Tolerance.String()
	}
	tierRT := map[string][]float64{}
	for _, pt := range plrt.Points {
		tier := tierOf[pt.Line]
		tierRT[tier] = append(tierRT[tier], pt.MedianRTDays)
	}
	fmt.Println("\nmedian of per-line median RT by software fault-tolerance tier:")
	for _, tier := range []string{"low", "medium", "high"} {
		xs := tierRT[tier]
		if len(xs) == 0 {
			continue
		}
		fmt.Printf("  %-6s tolerance: %6.1f days over %d lines\n", tier, median(xs), len(xs))
	}
	fmt.Println("\n=> better software fault tolerance, slower hardware response (paper §VI-C)")
}

func median(xs []float64) float64 {
	cp := make([]float64, len(xs))
	copy(cp, xs)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}
