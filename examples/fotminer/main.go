// Fotminer demonstrates the §VII-B extension: the correlation-mining
// layer the paper says the stateless FMS needs. It mines temporal
// association rules from a trace, scores the §VII-A early-warning
// predictor, and prints the operator-facing "related information" report
// for the two most interesting tickets — a chronic flapper and a batch
// member — which a stateless FMS would have shown as unrelated incidents.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
	"dcfail/internal/fot"
	"dcfail/internal/mine"
	"dcfail/internal/report"
)

func main() {
	res, err := fms.Run(fleetgen.SmallProfile(), fms.DefaultConfig(), 4242)
	if err != nil {
		log.Fatal(err)
	}

	// Temporal association rules: which failure kinds attract each other
	// on the same server beyond time coincidence?
	rules, err := mine.MineRules(res.Trace, 24*time.Hour, 3, 3.0)
	if err != nil {
		log.Fatal(err)
	}
	if err := report.MiningRules(os.Stdout, rules, 10); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// The early-warning predictor the paper's operators ignored (§VII-A).
	eval, err := mine.EvaluateWarningPredictor(res.Trace, 10*24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	if err := report.PredictorEval(os.Stdout, eval); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// Per-ticket context: pick the busiest server's latest ticket (the
	// chronic BBU suspect) and one ticket from the busiest hour (a batch
	// member).
	ix, err := mine.NewIndex(res.Trace)
	if err != nil {
		log.Fatal(err)
	}
	counts := map[uint64]int{}
	var chronicHost uint64
	for _, tk := range res.Trace.Tickets {
		counts[tk.HostID]++
		if counts[tk.HostID] > counts[chronicHost] {
			chronicHost = tk.HostID
		}
	}
	// The chronic server alternates RAID-card and drive tickets; show its
	// final RAID ticket (the true culprit's class).
	var chronicID uint64
	hourCounts := map[int64]int{}
	var bestHour int64
	for _, tk := range res.Trace.Tickets {
		if tk.HostID == chronicHost && (chronicID == 0 || tk.Device == fot.RAIDCard) {
			chronicID = tk.ID
		}
		h := tk.Time.Unix() / 3600
		hourCounts[h]++
		if hourCounts[h] > hourCounts[bestHour] {
			bestHour = h
		}
	}
	var batchID uint64
	for _, tk := range res.Trace.Tickets {
		if tk.Time.Unix()/3600 == bestHour {
			batchID = tk.ID
			break
		}
	}

	fmt.Println("what the operator should see next to these FOTs:")
	for _, id := range []uint64{chronicID, batchID} {
		ctx, err := ix.Contextualize(id)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.TicketContext(os.Stdout, ctx); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	fmt.Println("=> with this context, the paper's year-long BBU flap (§III-D) is one")
	fmt.Println("   glance instead of 400 independent tickets")
}
