// Netpipeline runs the paper's Fig. 1 architecture end to end over real
// TCP: a crash-safe collector comes up on a write-ahead log, host agents
// replay a simulated month of failures as wire reports (stamped with
// at-least-once dedup keys), the collector is then killed and a
// replacement recovers the full pool from the WAL, an operator client
// reviews and closes the recovered pool, the tickets land in an on-disk
// archive, and the archived trace is analyzed — proving the analysis
// pipeline is agnostic to where tickets come from and that a collector
// crash loses nothing that was acked.
package main

import (
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"dcfail/internal/archive"
	"dcfail/internal/core"
	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
	"dcfail/internal/fmsnet"
	"dcfail/internal/fot"
	"dcfail/internal/report"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Simulate a trace to replay; take one month of tickets.
	res, err := fms.Run(fleetgen.SmallProfile(), fms.DefaultConfig(), 2718)
	if err != nil {
		return err
	}
	month := res.Trace.Between(
		time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC),
	)
	fmt.Printf("replaying %d tickets through the wire pipeline\n", month.Len())

	// 2. Crash-safe collector on an ephemeral port: every accepted
	// report is WAL-appended before the ack.
	walDir, err := os.MkdirTemp("", "dcfail-wal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(walDir)
	collector, err := fmsnet.NewCollectorWith("127.0.0.1:0", fmsnet.CollectorOptions{WALDir: walDir})
	if err != nil {
		return err
	}
	defer collector.Close()
	fmt.Printf("collector listening on %s (wal in %s)\n", collector.Addr(), walDir)

	// 3. Four concurrent agents partition the tickets by host id; each
	// stamps its reports with an (AgentID, Seq) dedup key so retries
	// after a lost ack can never double-insert.
	const agents = 4
	channels := make([]chan *fmsnet.Report, agents)
	for i := range channels {
		channels[i] = make(chan *fmsnet.Report, 64)
	}
	var wg sync.WaitGroup
	agentErrs := make([]error, agents)
	sent := make([]int, agents)
	for i := 0; i < agents; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := fmsnet.DefaultAgentConfig()
			cfg.AgentID = fmt.Sprintf("net-agent-%d", i)
			stats, err := fmsnet.RunAgent(collector.Addr(), channels[i], cfg)
			agentErrs[i] = err
			if stats != nil {
				sent[i] = stats.Sent
			}
		}(i)
	}
	for _, tk := range month.Tickets {
		channels[tk.HostID%agents] <- &fmsnet.Report{
			HostID: tk.HostID, Hostname: tk.Hostname, IDC: tk.IDC,
			Rack: tk.Rack, Position: tk.Position,
			Device: tk.Device.String(), Slot: tk.Slot, Type: tk.Type,
			Time: tk.Time, Detail: tk.Detail,
			ProductLine: tk.ProductLine, DeployTime: tk.DeployTime,
			Model:      tk.Model,
			InWarranty: tk.Category != fot.Error,
		}
	}
	for _, ch := range channels {
		close(ch)
	}
	wg.Wait()
	total := 0
	for i, err := range agentErrs {
		if err != nil {
			return fmt.Errorf("agent %d: %w", i, err)
		}
		total += sent[i]
	}
	fmt.Printf("agents delivered %d reports\n", total)

	// 4. Crash the collector and recover a replacement from the WAL:
	// the pool comes back exactly as acked.
	if err := collector.Close(); err != nil {
		return err
	}
	collector, err = fmsnet.NewCollectorWith("127.0.0.1:0", fmsnet.CollectorOptions{WALDir: walDir})
	if err != nil {
		return err
	}
	defer collector.Close()
	rec := collector.Recovered()
	fmt.Printf("collector restarted on %s: recovered %d reports (%d open) from the wal\n",
		collector.Addr(), rec.Reports, rec.Open)

	// 5. An operator drains the recovered pool.
	operator, err := fmsnet.Dial(collector.Addr())
	if err != nil {
		return err
	}
	defer operator.Close()
	open, err := operator.List(true, 0)
	if err != nil {
		return err
	}
	for _, t := range open {
		if err := operator.CloseTicket(t.ID, fot.ActionRepairOrder, "op-net"); err != nil {
			return err
		}
	}
	stats, err := operator.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("operator closed %d tickets; pool now %+v\n", len(open), *stats)

	// 6. Archive the collected tickets on disk, query them back.
	dir, err := os.MkdirTemp("", "dcfail-archive-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	arch, err := archive.Open(dir, 500)
	if err != nil {
		return err
	}
	if err := arch.AppendTrace(collector.Trace()); err != nil {
		return err
	}
	if err := arch.Close(); err != nil {
		return err
	}
	archived, err := arch.Query(time.Time{}, time.Time{})
	if err != nil {
		return err
	}
	fmt.Printf("archive holds %d tickets in %d segment(s)\n",
		archived.Len(), len(arch.Segments()))

	// 7. Analyze the archived trace exactly like a simulated one.
	breakdown, err := core.ComponentBreakdown(archived)
	if err != nil {
		return err
	}
	return report.ComponentBreakdown(os.Stdout, breakdown)
}
