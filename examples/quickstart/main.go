// Quickstart: generate a synthetic four-year FOT trace, run the headline
// analyses, and print the paper's Tables I and II plus the fleet-wide
// MTBF — the minimal end-to-end tour of the dcfail API.
package main

import (
	"fmt"
	"log"
	"os"

	"dcfail/internal/core"
	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
	"dcfail/internal/report"
)

func main() {
	// 1. One call runs the whole simulator: fleet build, correlated
	//    failure injection, calibrated baseline sampling, FMS ticketing.
	res, err := fms.Run(fleetgen.SmallProfile(), fms.DefaultConfig(), 2024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d tickets across %d servers in %d datacenters\n\n",
		res.Trace.Len(), res.Fleet.NumServers(), len(res.Fleet.Datacenters))

	// 2. Analyses consume only the ticket trace.
	categories, err := core.CategoryBreakdown(res.Trace)
	if err != nil {
		log.Fatal(err)
	}
	if err := report.CategoryBreakdown(os.Stdout, categories); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	components, err := core.ComponentBreakdown(res.Trace)
	if err != nil {
		log.Fatal(err)
	}
	if err := report.ComponentBreakdown(os.Stdout, components); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// 3. The paper's Hypothesis 3: no classic distribution fits the
	//    time between failures.
	tbf, err := core.TBFAnalysis(res.Trace, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := report.TBF(os.Stdout, tbf); err != nil {
		log.Fatal(err)
	}
	if tbf.AllRejected(0.05) {
		fmt.Println("\n=> exponential/Weibull/gamma/lognormal all rejected, as in the paper")
	}
}
