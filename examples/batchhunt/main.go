// Batchhunt reproduces the paper's §V-A batch-failure study: it computes
// the Table V batch-frequency metric r_N, then mines the trace for batch
// episodes and prints case studies shaped like the paper's cases 1–3
// (a same-model hard-drive epidemic, a SAS-card motherboard cohort, and a
// single-PDU power outage).
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"dcfail/internal/core"
	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
	"dcfail/internal/fot"
	"dcfail/internal/report"
)

func main() {
	res, err := fms.Run(fleetgen.SmallProfile(), fms.DefaultConfig(), 7)
	if err != nil {
		log.Fatal(err)
	}
	census := core.CensusFromFleet(res.Fleet)

	// Table V. At small scale the absolute paper thresholds (100/200/500
	// failures per day) are out of reach, so sweep fleet-proportional
	// ones as well.
	for _, thresholds := range [][]int{{100, 200, 500}, {10, 20, 50}} {
		bf, err := core.BatchFrequency(res.Trace, thresholds)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.BatchFrequency(os.Stdout, bf); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	// Mine batch episodes: tight same-type failure bursts.
	episodes, err := core.BatchWindows(res.Trace, census, 30*time.Minute, 15)
	if err != nil {
		log.Fatal(err)
	}
	if err := report.BatchEpisodes(os.Stdout, episodes, 8); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// Case studies in the paper's format. The SAS cohorts split across
	// two one-hour windows (paper case 2), so mine again with a smaller
	// minimum episode size to catch each window.
	fine, err := core.BatchWindows(res.Trace, census, 30*time.Minute, 5)
	if err != nil {
		log.Fatal(err)
	}
	printCase(episodes, fot.HDD, "case 1 — hard-drive epidemic (same model, tight window)")
	printCase(fine, fot.Motherboard, "case 2 — SAS-card motherboard cohort")
	printCase(episodes, fot.Power, "case 3 — single-PDU power outage")
}

func printCase(eps []core.BatchEpisode, c fot.Component, title string) {
	for _, ep := range eps {
		if ep.Component != c {
			continue
		}
		fmt.Printf("%s\n", title)
		fmt.Printf("  %d %s/%s tickets on %d servers between %s and %s\n",
			ep.Tickets, ep.Component, ep.Type, ep.Servers,
			ep.Start.Format("2006-01-02 15:04"), ep.End.Format("15:04"))
		fmt.Printf("  spread: idcs=%v models=%v; hardest-hit line %s (%.0f%% of its fleet)\n\n",
			ep.IDCs, ep.Models, ep.TopProductLine, 100*ep.LineFraction)
		return
	}
	fmt.Printf("%s: no episode found at this scale\n\n", title)
}
