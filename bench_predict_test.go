package dcfail

// Predictor-cost benchmark: the streaming risk engine's per-fold update
// cost against the incremental section engine's delta-fold budget on the
// same append schedule, plus steady-state scoring throughput. The gate
// encodes the subsystem's bar for riding the serving fold path: keeping
// per-host feature state current must cost at most 10% of what the
// section engine already spends per delta fold.
//
// `make bench-predict` runs this at paper scale and writes
// BENCH_predict.json in the repo root; the run fails if the predictor's
// mean per-fold update exceeds 10% of the incremental fold budget.
// PREDICTBENCH_PROFILE=small is the CI smoke variant — same schedule,
// same artifact, seconds instead of minutes, no gate (fixed per-fold
// overheads are not amortised at toy scale).

import (
	"encoding/json"
	"os"
	"runtime"
	"slices"
	"testing"
	"time"

	"dcfail/internal/core"
	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
	"dcfail/internal/fot"
	"dcfail/internal/predict"
	"dcfail/internal/report"
)

func BenchmarkPredictUpdate(b *testing.B) {
	profileName := "paper"
	var res *fms.Result
	var cen *core.Census
	if os.Getenv("PREDICTBENCH_PROFILE") == "small" {
		profileName = "small"
		r, err := fms.Run(fleetgen.SmallProfile(), fms.DefaultConfig(), 42)
		if err != nil {
			b.Fatal(err)
		}
		res, cen = r, core.CensusFromFleet(r.Fleet)
	} else {
		res, cen = paperFixture(b)
	}

	// Global (time, id) order — the append order a live source delivers.
	tickets := append([]fot.Ticket(nil), res.Trace.Tickets...)
	slices.SortFunc(tickets, func(x, y fot.Ticket) int {
		if !x.Time.Equal(y.Time) {
			return x.Time.Compare(y.Time)
		}
		if x.ID < y.ID {
			return -1
		} else if x.ID > y.ID {
			return 1
		}
		return 0
	})

	// The serving daemon's steady state: one bootstrap fold, then delta
	// folds — the same schedule bench_fold_test.go prices the section
	// engine on, so the two budgets are directly comparable.
	const deltaFolds = 16
	boot := len(tickets) * 4 / 5
	cuts := []int{boot}
	for i := 1; i <= deltaFolds; i++ {
		cuts = append(cuts, boot+(len(tickets)-boot)*i/deltaFolds)
	}

	var foldNS, predNS []int64
	var pe *predict.Engine
	for iter := 0; iter < b.N; iter++ {
		engine := core.NewIncrementalEngine(report.StandardIncrementalSections(cen))
		pe = predict.NewEngine(predict.Options{})
		var ix *fot.TraceIndex
		foldNS, predNS = foldNS[:0], predNS[:0]

		for epoch, cut := range cuts {
			ix = fot.ExtendTraceIndex(ix, fot.NewTrace(tickets[:cut]))
			runtime.GC() // index builds allocate; keep GC out of the timed regions

			start := time.Now()
			engine.Advance(ix, uint64(epoch))
			foldD := time.Since(start)

			start = time.Now()
			pe.Advance(ix, uint64(epoch))
			predD := time.Since(start)

			if epoch > 0 { // bootstrap is not a steady-state fold
				foldNS = append(foldNS, int64(foldD))
				predNS = append(predNS, int64(predD))
			}
		}
		if st := pe.Stats(); st.Rebuilds != 0 {
			b.Fatalf("predictor rebuilt on a monotone schedule: %+v", st)
		}
	}

	// Steady-state scoring throughput over the fully folded fleet.
	ranked, _ := pe.AtRisk(256)
	if len(ranked) == 0 {
		b.Fatal("no hosts tracked after the full trace")
	}
	const scoreRounds = 50
	start := time.Now()
	for r := 0; r < scoreRounds; r++ {
		for i := range ranked {
			if _, _, ok := pe.ScoreHost(ranked[i].Host); !ok {
				b.Fatalf("tracked host %d lost its state", ranked[i].Host)
			}
		}
	}
	scoreD := time.Since(start)
	scores := scoreRounds * len(ranked)
	scoresPerSec := float64(scores) / scoreD.Seconds()

	mean := func(xs []int64) int64 {
		var sum int64
		for _, x := range xs {
			sum += x
		}
		return sum / int64(len(xs))
	}
	foldMean, predMean := mean(foldNS), mean(predNS)
	share := float64(predMean) / float64(foldMean)
	pass := share <= 0.10
	if profileName == "paper" && !pass {
		b.Errorf("predictor update is %.1f%% of the incremental fold budget (gate: <= 10%%; fold %v, predict %v)",
			share*100, time.Duration(foldMean), time.Duration(predMean))
	}

	doc := map[string]interface{}{
		"benchmark":           "BenchmarkPredictUpdate",
		"profile":             profileName,
		"tickets":             len(tickets),
		"hosts_tracked":       pe.Stats().Hosts,
		"bootstrap_rows":      boot,
		"delta_folds":         deltaFolds,
		"rows_per_fold":       (len(tickets) - boot) / deltaFolds,
		"fold_ns_per_fold":    foldMean,
		"predict_ns_per_fold": predMean,
		"fold_ns_folds":       foldNS,
		"predict_ns_folds":    predNS,
		"predict_share":       share,
		"scores_timed":        scores,
		"scores_per_sec":      scoresPerSec,
		"gate":                "predict update <= 10% of incremental fold budget at paper profile",
		"gate_pass":           pass,
		"cores":               runtime.NumCPU(),
		"go":                  runtime.Version(),
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_predict.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("predict update: %.2fms per fold vs %.2fms fold budget (%.1f%%); %.0f scores/s over %d hosts",
		float64(predMean)/1e6, float64(foldMean)/1e6, share*100, scoresPerSec, len(ranked))
}
