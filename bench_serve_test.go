package dcfail

// Load-generation benchmark for the replicated serving tier: a primary
// state, a replication stream, two synced replicas, and the router, all
// in-process. BenchmarkServeTier drives concurrent clients through the
// router and writes latency percentiles, throughput, and availability
// to BENCH_serve.json (the CI artifact tracked alongside
// BENCH_report.json).

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"dcfail/internal/core"
	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
	"dcfail/internal/replica"
	"dcfail/internal/router"
	"dcfail/internal/serve"
)

// serveTier is the in-process replicated stack under load.
type serveTier struct {
	stream   *replica.Server
	replicas []*tierNode
	rt       *router.Router
	front    *httptest.Server
}

type tierNode struct {
	daemon *serve.Daemon
	syncer *replica.Syncer
	ln     net.Listener
}

func startServeTier(b *testing.B, nReplicas int) *serveTier {
	b.Helper()
	res, err := fms.Run(fleetgen.SmallProfile(), fms.DefaultConfig(), 5)
	if err != nil {
		b.Fatal(err)
	}
	census := core.CensusFromFleet(res.Fleet)
	primary := serve.NewState(census, 0)
	primary.Fold(res.Trace.Tickets, time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC))

	stream, err := replica.NewServer("127.0.0.1:0", primary, replica.ServerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	tier := &serveTier{stream: stream}
	var urls []string
	for i := 0; i < nReplicas; i++ {
		d := serve.New(serve.Options{Census: census, MaxConcurrent: 256})
		sy := replica.NewSyncer(d.State(), replica.SyncerOptions{Addr: stream.Addr()})
		d.SetLagProbe(sy.Lag)
		sy.Start()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go d.Serve(ln)
		tier.replicas = append(tier.replicas, &tierNode{daemon: d, syncer: sy, ln: ln})
		urls = append(urls, "http://"+ln.Addr().String())
	}
	want := primary.Current().Epoch()
	deadline := time.Now().Add(60 * time.Second)
	for _, node := range tier.replicas {
		for node.daemon.State().Current().Epoch() != want {
			if time.Now().After(deadline) {
				b.Fatal("replicas never converged")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	rt, err := router.New(router.Options{
		Backends:      urls,
		CheckInterval: 100 * time.Millisecond,
		HedgeAfter:    500 * time.Millisecond,
		Client:        &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}},
	})
	if err != nil {
		b.Fatal(err)
	}
	tier.rt = rt
	tier.front = httptest.NewServer(rt.Handler())

	// One warm pass so every replica's section cache is hot: the artifact
	// measures the serving tier, not the first render of each epoch.
	resp, err := http.Get(tier.front.URL + "/report?sections=table2")
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return tier
}

func (tier *serveTier) close() {
	tier.front.Close()
	tier.rt.Close()
	for _, node := range tier.replicas {
		node.ln.Close()
		node.syncer.Stop()
	}
	tier.stream.Close()
}

// BenchmarkServeTier measures routed query latency through the full
// replicated stack. Each op is one GET /report?sections=table2 through
// the router; ops run in parallel client goroutines. After the run the
// best-observed percentiles, QPS, and availability (non-5xx fraction)
// are written to BENCH_serve.json.
func BenchmarkServeTier(b *testing.B) {
	tier := startServeTier(b, 2)
	defer tier.close()

	transport := &http.Transport{MaxIdleConnsPerHost: 256}
	defer transport.CloseIdleConnections()

	var mu sync.Mutex
	var latencies []time.Duration
	var failed int

	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{Transport: transport}
		var local []time.Duration
		localFailed := 0
		for pb.Next() {
			t0 := time.Now()
			resp, err := client.Get(tier.front.URL + "/report?sections=table2")
			if err != nil {
				localFailed++
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode >= http.StatusInternalServerError {
				localFailed++
				continue
			}
			local = append(local, time.Since(t0))
		}
		mu.Lock()
		latencies = append(latencies, local...)
		failed += localFailed
		mu.Unlock()
	})
	elapsed := time.Since(start)
	b.StopTimer()

	if len(latencies) == 0 {
		return
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(latencies)-1))
		return latencies[idx]
	}
	total := len(latencies) + failed
	availability := float64(len(latencies)) / float64(total)
	qps := float64(total) / elapsed.Seconds()

	b.ReportMetric(float64(pct(0.50).Nanoseconds()), "p50-ns")
	b.ReportMetric(float64(pct(0.99).Nanoseconds()), "p99-ns")
	b.ReportMetric(qps, "qps")

	status := tier.rt.Status()
	doc := map[string]interface{}{
		"benchmark":    "BenchmarkServeTier",
		"profile":      "small",
		"replicas":     len(tier.replicas),
		"clients":      runtime.GOMAXPROCS(0),
		"requests":     total,
		"failed":       failed,
		"availability": availability,
		"qps":          qps,
		"p50_ns":       pct(0.50).Nanoseconds(),
		"p90_ns":       pct(0.90).Nanoseconds(),
		"p99_ns":       pct(0.99).Nanoseconds(),
		"max_ns":       latencies[len(latencies)-1].Nanoseconds(),
		"hedges":       status.Hedges,
		"failovers":    status.Failovers,
		"shed":         status.Shed,
		"cores":        runtime.NumCPU(),
		"go":           runtime.Version(),
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_serve.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("serve tier: %d requests, p50 %v, p99 %v, %.0f qps, availability %.4f",
		total, pct(0.50), pct(0.99), qps, availability)
}
