package dcfail

// Fold-cost benchmark: the incremental section engine's per-fold cost
// (delta advance + re-render of changed sections, byte-carry for the
// rest) against the full recompute every serving fold paid before it.
// Both paths run over identically built indexes, each with its own
// per-epoch memo space, and every fold's assembled output is checked
// byte-identical — the speedup is only meaningful if the bytes agree.
//
// `make bench-fold` runs this at paper scale and writes BENCH_fold.json
// in the repo root; the run fails if the steady-state speedup drops
// under 5x. FOLDBENCH_PROFILE=small is the CI smoke variant — it checks
// the same byte identity and emits the same artifact in seconds, but
// does not enforce the speedup gate (delta overhead is not amortised at
// toy scale).

import (
	"bytes"
	"encoding/json"
	"os"
	"runtime"
	"slices"
	"testing"
	"time"

	"dcfail/internal/core"
	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
	"dcfail/internal/fot"
	"dcfail/internal/report"
)

func BenchmarkFoldDelta(b *testing.B) {
	profileName := "paper"
	var res *fms.Result
	var cen *core.Census
	if os.Getenv("FOLDBENCH_PROFILE") == "small" {
		profileName = "small"
		r, err := fms.Run(fleetgen.SmallProfile(), fms.DefaultConfig(), 42)
		if err != nil {
			b.Fatal(err)
		}
		res, cen = r, core.CensusFromFleet(r.Fleet)
	} else {
		res, cen = paperFixture(b)
	}

	// Global (time, id) order — the append order a live source delivers.
	tickets := append([]fot.Ticket(nil), res.Trace.Tickets...)
	slices.SortFunc(tickets, func(x, y fot.Ticket) int {
		if !x.Time.Equal(y.Time) {
			return x.Time.Compare(y.Time)
		}
		if x.ID < y.ID {
			return -1
		} else if x.ID > y.ID {
			return 1
		}
		return 0
	})

	// One bootstrap fold carries 80% of the trace; the remaining rows
	// arrive as steady-state delta folds, the regime the daemon lives in.
	const deltaFolds = 16
	boot := len(tickets) * 4 / 5
	cuts := []int{boot}
	for i := 1; i <= deltaFolds; i++ {
		cuts = append(cuts, boot+(len(tickets)-boot)*i/deltaFolds)
	}

	sections := report.StandardSections(cen)
	type rendered struct {
		bytes []byte
		err   string
	}

	var fullNS, incNS []int64
	for iter := 0; iter < b.N; iter++ {
		engine := core.NewIncrementalEngine(report.StandardIncrementalSections(cen))
		var ixInc, ixFull *fot.TraceIndex
		carried := map[string]rendered{}
		fullNS, incNS = fullNS[:0], incNS[:0]

		for epoch, cut := range cuts {
			ixInc = fot.ExtendTraceIndex(ixInc, fot.NewTrace(tickets[:cut]))
			ixFull = fot.ExtendTraceIndex(ixFull, fot.NewTrace(tickets[:cut]))

			// The untimed index builds above allocate heavily; collect
			// their garbage now so neither timed region pays a GC cycle
			// triggered by setup work.
			runtime.GC()

			// Incremental fold: consume the delta, re-render only what
			// changed, keep carried bytes for the rest.
			start := time.Now()
			changed := engine.Advance(ixInc, uint64(epoch))
			for _, sec := range sections {
				if _, ok := carried[sec.ID]; ok && !changed[sec.ID] {
					continue
				}
				var buf bytes.Buffer
				ok, err := engine.TryRender(sec.ID, uint64(epoch), ixInc, &buf)
				if !ok {
					b.Fatalf("epoch %d: TryRender(%q) refused", epoch, sec.ID)
				}
				r := rendered{bytes: buf.Bytes()}
				if err != nil {
					r.err = err.Error()
				}
				carried[sec.ID] = r
			}
			incD := time.Since(start)

			// Full recompute: every section from scratch, as the serving
			// tier did before the engine existed.
			start = time.Now()
			full := make(map[string]rendered, len(sections))
			for _, sec := range sections {
				var buf bytes.Buffer
				err := sec.Render(ixFull, &buf)
				r := rendered{bytes: buf.Bytes()}
				if err != nil {
					r.err = err.Error()
				}
				full[sec.ID] = r
			}
			fullD := time.Since(start)

			if epoch > 0 { // bootstrap is not a steady-state fold
				incNS = append(incNS, int64(incD))
				fullNS = append(fullNS, int64(fullD))
			}
			for _, sec := range sections {
				f, c := full[sec.ID], carried[sec.ID]
				if !bytes.Equal(f.bytes, c.bytes) || f.err != c.err {
					b.Fatalf("epoch %d section %s: incremental output diverged from full recompute", epoch, sec.ID)
				}
			}
		}
		if st := engine.Stats(); st.Rebuilds != 0 || len(st.Broken) != 0 {
			b.Fatalf("engine stats after monotone schedule: %+v", st)
		}
	}

	mean := func(xs []int64) int64 {
		var sum int64
		for _, x := range xs {
			sum += x
		}
		return sum / int64(len(xs))
	}
	fullMean, incMean := mean(fullNS), mean(incNS)
	speedup := float64(fullMean) / float64(incMean)
	pass := speedup >= 5
	if profileName == "paper" && !pass {
		b.Errorf("per-fold speedup %.2fx under the 5x gate (full %v, incremental %v)",
			speedup, time.Duration(fullMean), time.Duration(incMean))
	}

	doc := map[string]interface{}{
		"benchmark":        "BenchmarkFoldDelta",
		"profile":          profileName,
		"tickets":          len(tickets),
		"sections":         len(sections),
		"bootstrap_rows":   boot,
		"delta_folds":      deltaFolds,
		"rows_per_fold":    (len(tickets) - boot) / deltaFolds,
		"full_ns_per_fold": fullMean,
		"inc_ns_per_fold":  incMean,
		"full_ns_folds":    fullNS,
		"inc_ns_folds":     incNS,
		"speedup":          speedup,
		"gate":             "speedup >= 5 at paper profile",
		"gate_pass":        pass,
		"byte_identical":   true, // enforced per fold above; a divergence aborts the run
		"cores":            runtime.NumCPU(),
		"go":               runtime.Version(),
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_fold.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("fold cost: full %.1fms, incremental %.1fms per fold — %.1fx (%d delta folds of ~%d rows)",
		float64(fullMean)/1e6, float64(incMean)/1e6, speedup, deltaFolds, (len(tickets)-boot)/deltaFolds)
}
