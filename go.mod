module dcfail

go 1.22
