package dcfail

// Paper-scale experiment harness: regenerates the DSN'17 study on the
// default (paper) profile and checks that each published finding
// re-emerges. EXPERIMENTS.md records the paper-vs-measured numbers these
// tests log.

import (
	"sync"
	"testing"
	"time"

	"dcfail/internal/core"
	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
	"dcfail/internal/fot"
)

var (
	paperOnce sync.Once
	paperRes  *fms.Result
	paperCen  *core.Census
	paperErr  error
)

// paperFixture generates the paper-scale trace once per test binary
// (~10 s, ≈260k tickets on ≈124k servers).
func paperFixture(t testing.TB) (*fms.Result, *core.Census) {
	t.Helper()
	paperOnce.Do(func() {
		paperRes, paperErr = fms.Run(fleetgen.PaperProfile(), fms.DefaultConfig(), 42)
		if paperErr == nil {
			paperCen = core.CensusFromFleet(paperRes.Fleet)
		}
	})
	if paperErr != nil {
		t.Fatal(paperErr)
	}
	return paperRes, paperCen
}

func TestPaperTableI(t *testing.T) {
	res, _ := paperFixture(t)
	r, err := core.CategoryBreakdown(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	want := map[fot.Category]float64{fot.Fixing: 0.703, fot.Error: 0.280, fot.FalseAlarm: 0.017}
	for _, row := range r.Rows {
		t.Logf("Table I %v: paper %.1f%% measured %.1f%%",
			row.Category, 100*want[row.Category], 100*row.Fraction)
		if diff := row.Fraction - want[row.Category]; diff > 0.06 || diff < -0.06 {
			t.Errorf("%v share %.3f too far from paper %.3f", row.Category, row.Fraction, want[row.Category])
		}
	}
}

func TestPaperTableII(t *testing.T) {
	res, _ := paperFixture(t)
	r, err := core.ComponentBreakdown(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	want := fleetgen.TableIIShares()
	for _, row := range r.Rows {
		t.Logf("Table II %v: paper %.2f%% measured %.2f%%",
			row.Component, 100*want[row.Component], 100*row.Fraction)
		// Within 25% relative or 0.5pp absolute of the published share.
		diff := row.Fraction - want[row.Component]
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.25*want[row.Component]+0.005 {
			t.Errorf("%v share %.4f too far from paper %.4f", row.Component, row.Fraction, want[row.Component])
		}
	}
	if r.Rows[0].Component != fot.HDD {
		t.Error("HDD should dominate Table II")
	}
}

func TestPaperHypotheses1And2(t *testing.T) {
	res, _ := paperFixture(t)
	// The paper rejects H1 for every class at 0.01 on 290k tickets; at
	// our half-scale the low-volume classes (raid, ssd, fan...) lack the
	// counts, so assert the high-volume ones.
	for _, c := range []fot.Component{0, fot.HDD, fot.Memory, fot.Misc} {
		dow, err := core.DayOfWeek(res.Trace, c)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if !dow.Test.Reject(0.01) {
			t.Errorf("H1 not rejected for %v: %v", c, dow.Test)
		}
		if !dow.WeekdayTest.Reject(0.02) {
			t.Errorf("H1 (weekdays) not rejected for %v: %v", c, dow.WeekdayTest)
		}
	}
	for _, c := range []fot.Component{0, fot.HDD, fot.Memory, fot.Misc, fot.Power} {
		hod, err := core.HourOfDay(res.Trace, c)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if !hod.Test.Reject(0.01) {
			t.Errorf("H2 not rejected for %v: %v", c, hod.Test)
		}
	}
}

func TestPaperHypotheses3And4(t *testing.T) {
	res, _ := paperFixture(t)
	tbf, err := core.TBFAnalysis(res.Trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Fig 5: paper MTBF 6.8 min, measured %.1f min (median %.2f)",
		tbf.MTBFMinutes, tbf.MedianMinutes)
	// Paper: fleet-wide MTBF 6.8 minutes; ours lands in the same decade.
	if tbf.MTBFMinutes > 30 {
		t.Errorf("MTBF %.1f min an order of magnitude off the paper's 6.8", tbf.MTBFMinutes)
	}
	if !tbf.AllRejected(0.05) {
		t.Error("H3: some distribution fits the fleet-wide TBF")
	}
	// Paper: per-datacenter MTBF between 32 and 390 minutes.
	for idc, m := range tbf.PerIDCMTBF {
		if m < 5 || m > 3000 {
			t.Errorf("per-DC MTBF %s = %.0f min outside plausible band", idc, m)
		}
	}
	for _, c := range []fot.Component{fot.HDD, fot.Misc, fot.Memory} {
		sub, err := core.TBFAnalysis(res.Trace, c)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if !sub.AllRejected(0.05) {
			t.Errorf("H4 not rejected for %v", c)
		}
	}
}

func TestPaperFig6Lifecycle(t *testing.T) {
	res, cen := paperFixture(t)
	raid, err := core.LifecycleRates(res.Trace, cen, fot.RAIDCard, 50)
	if err != nil {
		t.Fatal(err)
	}
	mass := raid.MassBetween(0, 6)
	t.Logf("Fig 6f: paper 47.4%% of RAID failures in first 6 months, measured %.1f%%", 100*mass)
	if mass < 0.30 || mass > 0.65 {
		t.Errorf("RAID infant mass %.3f far from paper's 0.474", mass)
	}

	flash, err := core.LifecycleRates(res.Trace, cen, fot.FlashCard, 48)
	if err != nil {
		t.Fatal(err)
	}
	fy := flash.MassBetween(0, 12)
	t.Logf("Fig 6e: paper 1.4%% of flash failures in year one, measured %.1f%%", 100*fy)
	if fy > 0.10 {
		t.Errorf("flash year-one mass %.3f, paper says 0.014", fy)
	}

	mb, err := core.LifecycleRates(res.Trace, cen, fot.Motherboard, 72)
	if err != nil {
		t.Fatal(err)
	}
	late := mb.MassBetween(36, 72)
	t.Logf("Fig 6c: paper 72.1%% of motherboard failures after 3 years, measured %.1f%%", 100*late)
	if late < 0.50 {
		t.Errorf("motherboard 3y+ mass %.3f, paper says 0.721", late)
	}

	misc, err := core.LifecycleRates(res.Trace, cen, fot.Misc, 48)
	if err != nil {
		t.Fatal(err)
	}
	if misc.Normalized[0] != 1 {
		t.Error("Fig 6i: misc deployment-month spike missing")
	}

	hdd, err := core.LifecycleRates(res.Trace, cen, fot.HDD, 48)
	if err != nil {
		t.Fatal(err)
	}
	earlyBump := (hdd.Rates[0] + hdd.Rates[1] + hdd.Rates[2]) /
		(hdd.Rates[3] + hdd.Rates[4] + hdd.Rates[5] + hdd.Rates[6] + hdd.Rates[7] + hdd.Rates[8]) * 2
	t.Logf("Fig 6a: paper HDD infant bump +20%%, measured %+.0f%%", 100*(earlyBump-1))
	if earlyBump < 1.02 {
		t.Error("Fig 6a: HDD infant mortality missing")
	}
}

func TestPaperFig7AndRepeats(t *testing.T) {
	res, _ := paperFixture(t)
	sk, err := core.ServerSkew(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	proportional := 0.02
	t.Logf("Fig 7: top 2%% of failed servers hold %.1f%% of failures (paper: >99%%; see EXPERIMENTS.md)",
		100*sk.TopShare[0.02])
	if sk.TopShare[0.02] < 2*proportional {
		t.Errorf("top-2%% share %.3f barely super-proportional", sk.TopShare[0.02])
	}
	t.Logf("Fig 7: busiest server has %d tickets (paper's chronic BBU server: >400)", sk.MaxOneServer)
	if sk.MaxOneServer < 300 {
		t.Errorf("chronic server max %d, want ≈400", sk.MaxOneServer)
	}

	rep, err := core.RepeatAnalysis(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("§III-D: never-repeat %.1f%% (paper >85%%), repeat servers %.2f%% (paper ≈4.5%%)",
		100*rep.NeverRepeatFraction, 100*rep.RepeatServerFraction)
	if rep.NeverRepeatFraction < 0.85 {
		t.Errorf("never-repeat %.3f below the paper's 85%%", rep.NeverRepeatFraction)
	}
	if rep.RepeatServerFraction <= 0 || rep.RepeatServerFraction > 0.15 {
		t.Errorf("repeat-server fraction %.4f out of band", rep.RepeatServerFraction)
	}
}

func TestPaperTableIVHypothesis5(t *testing.T) {
	res, cen := paperFixture(t)
	ra, err := core.RackAnalysis(res.Trace, cen)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Table IV: paper 10/4/10 of 24; measured %d/%d/%d of %d",
		ra.PLow, ra.PMid, ra.PHigh, len(ra.PerDC))
	if ra.PLow < 6 {
		t.Errorf("only %d facilities reject at 0.01; paper saw 10", ra.PLow)
	}
	if ra.PHigh < 6 {
		t.Errorf("only %d facilities retain H5; paper saw 10", ra.PHigh)
	}
	t.Logf("§IV: paper ~90%% of post-2014 facilities uniform; measured %.0f%%",
		100*ra.ModernNonRejectFraction)
	if ra.ModernNonRejectFraction < 0.7 {
		t.Errorf("modern facilities too uneven: %.2f", ra.ModernNonRejectFraction)
	}
	// The hotspot facility's planted anomalies (paper positions 22/35).
	rp, err := core.RackPositions(res.Trace, cen, "dc01")
	if err != nil {
		t.Fatal(err)
	}
	wantNear := map[int]bool{rp.Positions - 5: true, rp.Positions/2 + 2: true}
	found := 0
	for _, p := range rp.Anomalies {
		if wantNear[p] {
			found++
		}
	}
	t.Logf("Fig 8: dc01 anomalies %v (planted at %d and %d)",
		rp.Anomalies, rp.Positions-5, rp.Positions/2+2)
	if found == 0 {
		t.Error("planted hot positions not detected")
	}
}

func TestPaperTableVBatchFrequency(t *testing.T) {
	res, _ := paperFixture(t)
	bf, err := core.BatchFrequency(res.Trace, []int{100, 200, 500})
	if err != nil {
		t.Fatal(err)
	}
	var hdd core.BatchFrequencyRow
	for _, row := range bf.Rows {
		if row.Component == fot.HDD {
			hdd = row
		}
		if row.Component == fot.CPU && row.R[100] > 0 {
			t.Error("Table V: CPU should never batch")
		}
	}
	t.Logf("Table V HDD: paper r100=55.4%% r200=22.5%% r500=2.5%%; measured %.1f%%/%.1f%%/%.1f%%",
		100*hdd.R[100], 100*hdd.R[200], 100*hdd.R[500])
	if hdd.R[100] < 0.30 || hdd.R[100] > 0.75 {
		t.Errorf("HDD r100 = %.3f far from paper's 0.554", hdd.R[100])
	}
	if hdd.R[200] < 0.08 || hdd.R[200] > 0.40 {
		t.Errorf("HDD r200 = %.3f far from paper's 0.225", hdd.R[200])
	}
	if hdd.R[500] < 0.005 || hdd.R[500] > 0.10 {
		t.Errorf("HDD r500 = %.3f far from paper's 0.025", hdd.R[500])
	}
	if !(hdd.R[100] > hdd.R[200] && hdd.R[200] > hdd.R[500]) {
		t.Error("Table V: r must fall with the threshold")
	}
}

func TestPaperTableVICorrelatedPairs(t *testing.T) {
	res, _ := paperFixture(t)
	cp, err := core.CorrelatedPairs(res.Trace, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Table VI: %d pairs; misc involved in %.1f%% (paper 71.5%%); %.2f%% of failed servers (paper 0.49%%)",
		cp.TotalPairs, 100*cp.MiscFraction, 100*cp.ServerFraction)
	if cp.MiscFraction < 0.50 || cp.MiscFraction > 0.90 {
		t.Errorf("misc fraction %.3f far from paper's 0.715", cp.MiscFraction)
	}
	if cp.ServerFraction > 0.05 {
		t.Errorf("pair prevalence %.4f too high (paper 0.0049)", cp.ServerFraction)
	}
	if cp.Pairs[0].A != fot.HDD || cp.Pairs[0].B != fot.Misc {
		t.Errorf("dominant pair %v×%v, paper's is hdd×misc", cp.Pairs[0].A, cp.Pairs[0].B)
	}
	if len(cp.PowerFanExamples) == 0 {
		t.Error("Table VII: no power→fan examples")
	}
}

func TestPaperTableVIIISyncRepeats(t *testing.T) {
	res, _ := paperFixture(t)
	groups, err := core.SyncRepeatGroups(res.Trace, 2*time.Minute, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Table VIII: %d synchronized repeat groups mined", len(groups))
	if len(groups) < 5 {
		t.Errorf("only %d sync-repeat groups; injector plants 25", len(groups))
	}
}

func TestPaperFig9To11ResponseTimes(t *testing.T) {
	res, _ := paperFixture(t)
	fixing, err := core.ResponseTimes(res.Trace, fot.Fixing)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Fig 9 D_fixing: paper mean 42.2 d / median 6.1 d / 10%%>140 d; measured %.1f / %.1f / %.1f%%",
		fixing.MeanDays, fixing.MedianDays, 100*fixing.FracOver140)
	if fixing.MeanDays < 20 || fixing.MeanDays > 90 {
		t.Errorf("MTTR %.1f d far from paper's 42.2", fixing.MeanDays)
	}
	if fixing.MedianDays < 2 || fixing.MedianDays > 15 {
		t.Errorf("median RT %.1f d far from paper's 6.1", fixing.MedianDays)
	}
	if fixing.FracOver140 < 0.02 || fixing.FracOver140 > 0.20 {
		t.Errorf("tail beyond 140 d %.3f far from paper's 0.10", fixing.FracOver140)
	}

	alarm, err := core.ResponseTimes(res.Trace, fot.FalseAlarm)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Fig 9 false alarms: paper mean 19.1 d / median 4.9 d; measured %.1f / %.1f",
		alarm.MeanDays, alarm.MedianDays)
	if !(alarm.MeanDays < fixing.MeanDays) {
		t.Error("false alarms should resolve faster than repairs on average")
	}

	byClass, err := core.ResponseTimesByClass(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Fig 10 medians: ssd %.2f d, misc %.2f d, hdd %.1f d, fan %.1f d, memory %.1f d",
		byClass[fot.SSD].MedianDays, byClass[fot.Misc].MedianDays,
		byClass[fot.HDD].MedianDays, byClass[fot.Fan].MedianDays,
		byClass[fot.Memory].MedianDays)
	if byClass[fot.SSD].MedianDays > 1 || byClass[fot.Misc].MedianDays > 1 {
		t.Error("Fig 10: SSD/misc should respond within hours")
	}
	for _, c := range []fot.Component{fot.HDD, fot.Fan, fot.Memory} {
		if m := byClass[c].MedianDays; m < 3 || m > 40 {
			t.Errorf("Fig 10: %v median %.1f d outside the paper's 7–18 d decade", c, m)
		}
	}

	plrt, err := core.ProductLineRT(res.Trace, fot.HDD)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Fig 11: busiest-1%% pooled median %.1f d (paper 47); line σ %.1f d (paper 30.2); small slow lines %.0f%% (paper 21%%)",
		plrt.Top1PctMedianDays, plrt.MedianStdDevDays, 100*plrt.SmallLineOver100dFraction)
	if plrt.Top1PctMedianDays < 10 {
		t.Errorf("busiest lines median %.1f d, paper's is 47", plrt.Top1PctMedianDays)
	}
	if plrt.MedianStdDevDays < 5 {
		t.Errorf("cross-line σ %.1f d, paper's is 30.2", plrt.MedianStdDevDays)
	}
}

// TestPaperFig11AntiCorrelation quantifies §VI-C's "it is just the
// opposite": the rank correlation between a line's failure volume and its
// median RT must not be meaningfully positive.
func TestPaperFig11AntiCorrelation(t *testing.T) {
	res, _ := paperFixture(t)
	plrt, err := core.ProductLineRT(res.Trace, fot.HDD)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Fig 11: Spearman(volume, median RT) = %+.3f over %d lines",
		plrt.VolumeRTCorrelation, len(plrt.Points))
	if plrt.VolumeRTCorrelation > 0.15 {
		t.Errorf("volume–RT correlation %+.3f is positive; paper says the opposite",
			plrt.VolumeRTCorrelation)
	}
}
