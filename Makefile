# dcfail build/test entry points.
#
# Tier 1 (the seed gate): build everything and run the unit tests.
# Tier 2 (concurrency gate): vet plus the full suite under the race
# detector — the fmsnet/wal/faultnet crash-safety surface is heavily
# concurrent and must stay race-clean.

GO ?= go

.PHONY: all build test race vet lint lint-sarif tier1 tier2 serve-smoke chaos bench bench-serve bench-fold bench-predict bench-ingest benchall profile

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

tier1: build test

tier2: vet lint race serve-smoke chaos

# lint: fotlint runs the project-specific analyzers (determinism,
# durability, clock-injection, and concurrency-contract invariants)
# over the whole module; every finding must be fixed or
# reason-suppressed with //lint:ignore.
# `go run ./cmd/fotlint -list` prints the rule registry.
lint:
	$(GO) run ./cmd/fotlint ./...

# lint-sarif: the same run as a SARIF 2.1.0 log (fotlint.sarif in the
# repo root) — what CI uploads as a workflow artifact; suppressed
# findings ride along as inSource suppressions with their reasons.
lint-sarif:
	$(GO) run ./cmd/fotlint -sarif ./... > fotlint.sarif

# serve-smoke: fotqueryd generates a trace, serves it on a loopback
# port, queries its own HTTP API end to end, and exits non-zero on any
# mismatch — the hermetic live-service gate. The router smoke stands up
# the full replicated tier (primary, stream, two replicas, router),
# kills the serving replica, and requires the failover query to succeed.
serve-smoke:
	$(GO) run ./cmd/fotqueryd -smoke
	$(GO) run ./cmd/fotrouter -smoke

# chaos: the replica-kill/restart harness under the race detector — a
# thousand concurrent clients through the router while a replica dies
# and rejoins mid-stream; the gate is zero failed queries and
# byte-identical responses. `-short` drops to 100 clients.
chaos:
	$(GO) test -race -run TestChaosReplicaKillRestartUnderLoad -v ./internal/router/

# bench: the headline serial-vs-parallel full-report comparison at paper
# scale; writes BENCH_report.json in the repo root.
bench:
	$(GO) test -run '^$$' -bench BenchmarkFullReport -benchtime 2x -v .

# bench-serve: load-generates the replicated serving tier through the
# router and writes latency percentiles / QPS / availability to
# BENCH_serve.json in the repo root.
bench-serve:
	$(GO) test -run '^$$' -bench BenchmarkServeTier -benchtime 500x -v .

# bench-fold: incremental engine delta-fold cost against full recompute
# at paper scale; writes BENCH_fold.json in the repo root and fails if
# the steady-state per-fold speedup drops under 5x. The CI smoke runs
# the same benchmark with FOLDBENCH_PROFILE=small (byte-identity checked,
# gate not enforced at toy scale).
bench-fold:
	$(GO) test -run '^$$' -bench BenchmarkFoldDelta -benchtime 1x -v -timeout 40m .

# bench-predict: streaming risk-engine per-fold update cost against the
# incremental fold budget, plus scoring throughput; writes
# BENCH_predict.json in the repo root and fails if the update exceeds
# 10% of the fold budget at paper scale. The CI smoke runs the same
# benchmark with PREDICTBENCH_PROFILE=small (artifact emitted, gate not
# enforced at toy scale).
bench-predict:
	$(GO) test -run '^$$' -bench BenchmarkPredictUpdate -benchtime 1x -v -timeout 40m .

# bench-ingest: binary ticket wire vs the legacy JSON-lines codec on
# the collector→fold ingest path, plus cold start from a columnar
# (.fotseg) archive vs JSON-segment replay; writes BENCH_ingest.json in
# the repo root and fails if binary ingest drops under 1M tickets/s or
# the cold-start speedup under 20x at paper scale. The CI smoke runs the
# same benchmark with INGESTBENCH_PROFILE=small (report byte-identity
# checked at every profile, gates not enforced at toy scale).
bench-ingest:
	$(GO) test -run '^$$' -bench BenchmarkIngestWire -benchtime 1x -v -timeout 40m .

# benchall: the full per-table/per-figure benchmark sweep.
benchall:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# profile: CPU and allocation profiles of the paper-scale report
# pipeline; inspect with `go tool pprof cpu.out` / `mem.out`. The
# live daemon side is `fotqueryd -pprof 127.0.0.1:6060` instead.
profile:
	$(GO) run ./cmd/fotreport -profile paper -seed 42 -cpuprofile cpu.out -memprofile mem.out > /dev/null
	@echo "wrote cpu.out and mem.out (go tool pprof <file>)"
