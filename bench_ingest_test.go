package dcfail

// Ingest-path benchmark for the binary ticket wire and the columnar
// segment archive. Two gates, both enforced at paper scale:
//
//   - sustained collector→fold ingest of the binary wire (frame decode →
//     batched ExtendTraceIndex folds, the serving tier's epoch regime)
//     must hold at least 1M tickets/s;
//   - cold start from a columnar (.fotseg) archive must replay at least
//     20x faster than the same history as JSON-lines segments.
//
// Both codecs feed the identical fold chain, so the ratio isolates codec
// cost. Before any timing, the trace is normalized through one JSON
// round trip: RFC 3339 truncates sub-second timestamps, so this is the
// exact image a JSON segment stores, and it makes the three report
// sources (memory, JSON archive, binary archive) comparable. The run
// then proves report.SerialReference byte-identical across all three —
// at every profile, not just paper: a fast codec that changes the report
// is a bug, not a win.
//
// `make bench-ingest` runs this at paper scale and writes
// BENCH_ingest.json in the repo root. INGESTBENCH_PROFILE=small is the
// CI smoke variant: same byte-identity proof, same artifact, seconds of
// runtime, gates recorded but not enforced (toy scale does not amortize
// per-batch index costs).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"dcfail/internal/archive"
	"dcfail/internal/core"
	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
	"dcfail/internal/fot"
	"dcfail/internal/report"
	"dcfail/internal/wire"
)

// ingestFoldBatch mirrors fotqueryd's default -fold-batch.
const ingestFoldBatch = 8192

// foldChain is the shared consumer both codecs feed: accumulate decoded
// tickets and fold every full batch into the extending trace index,
// materializing columns, exactly as the serving tier's epoch folds do.
type foldChain struct {
	all []fot.Ticket
	ix  *fot.TraceIndex
}

func (f *foldChain) push(t fot.Ticket) {
	f.all = append(f.all, t)
	if len(f.all)%ingestFoldBatch == 0 {
		f.fold()
	}
}

func (f *foldChain) fold() {
	n := len(f.all)
	f.ix = fot.ExtendTraceIndex(f.ix, fot.NewTrace(f.all[:n:n]))
	f.ix.Cols()
}

func (f *foldChain) finish(b *testing.B, want int) {
	if len(f.all)%ingestFoldBatch != 0 {
		f.fold()
	}
	if len(f.all) != want {
		b.Fatalf("fold chain consumed %d tickets, want %d", len(f.all), want)
	}
}

// renderReference renders the full serial reference report over a trace.
func renderReference(b *testing.B, tr *fot.Trace, cen *core.Census) []byte {
	b.Helper()
	var buf bytes.Buffer
	if err := report.SerialReference(&buf, tr, cen, nil); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// coldStart replays an archive directory from zero the way fotqueryd's
// TailArchive does on boot, returning the replayed tickets and the time
// the replay took.
func coldStart(b *testing.B, dir string) ([]fot.Ticket, time.Duration) {
	b.Helper()
	f := archive.Follow(dir, archive.Position{})
	start := time.Now()
	tickets, err := f.Poll()
	elapsed := time.Since(start)
	if err != nil {
		b.Fatal(err)
	}
	return tickets, elapsed
}

func BenchmarkIngestWire(b *testing.B) {
	profileName := "paper"
	var res *fms.Result
	var cen *core.Census
	if os.Getenv("INGESTBENCH_PROFILE") == "small" {
		profileName = "small"
		r, err := fms.Run(fleetgen.SmallProfile(), fms.DefaultConfig(), 42)
		if err != nil {
			b.Fatal(err)
		}
		res, cen = r, core.CensusFromFleet(r.Fleet)
	} else {
		res, cen = paperFixture(b)
	}

	// Normalize through one JSON round trip (see the file comment).
	tickets := make([]fot.Ticket, res.Trace.Len())
	for i, tk := range res.Trace.Tickets {
		line, err := fot.MarshalJSONLine(tk)
		if err != nil {
			b.Fatal(err)
		}
		tickets[i], err = fot.UnmarshalJSONLine(line)
		if err != nil {
			b.Fatal(err)
		}
	}
	n := len(tickets)

	// Pre-encode the full history under both wire codecs, as a collector
	// stream would deliver it.
	enc := wire.NewEncoder()
	var binStream []byte
	var jsonStream []byte
	for i := range tickets {
		binStream = enc.AppendTicket(binStream, &tickets[i])
		line, err := fot.MarshalJSONLine(tickets[i])
		if err != nil {
			b.Fatal(err)
		}
		jsonStream = append(jsonStream, line...)
		jsonStream = append(jsonStream, '\n')
	}

	// Write the same history as a JSON archive and a binary (columnar)
	// archive for the cold-start comparison.
	norm := fot.NewTrace(tickets)
	dirs := map[string]string{archive.CodecJSON: b.TempDir(), archive.CodecBinary: b.TempDir()}
	for codec, dir := range dirs {
		a, err := archive.OpenWith(dir, archive.Options{MaxPerSegment: 1 << 16, Codec: codec})
		if err != nil {
			b.Fatal(err)
		}
		if err := a.AppendTrace(norm); err != nil {
			b.Fatal(err)
		}
		if err := a.Close(); err != nil {
			b.Fatal(err)
		}
	}

	var binIngestNS, jsonIngestNS, binColdNS, jsonColdNS int64
	var binCold, jsonCold []fot.Ticket
	for iter := 0; iter < b.N; iter++ {
		// Binary wire ingest: frame decode feeding the fold chain.
		runtime.GC()
		chain := &foldChain{all: make([]fot.Ticket, 0, n)}
		fr := wire.NewFrameReader(bytes.NewReader(binStream))
		dec := wire.NewDecoder()
		var t fot.Ticket
		start := time.Now()
		for {
			kind, payload, err := fr.Next()
			if err != nil {
				break // io.EOF on the clean end of the stream
			}
			if kind != wire.KindTicket {
				b.Fatalf("unexpected frame kind %d", kind)
			}
			if err := dec.DecodeTicketInto(payload, &t); err != nil {
				b.Fatal(err)
			}
			chain.push(t)
		}
		chain.finish(b, n)
		binIngestNS += int64(time.Since(start))

		// JSON wire ingest: the legacy line-delimited codec feeding the
		// identical fold chain.
		runtime.GC()
		chain = &foldChain{all: make([]fot.Ticket, 0, n)}
		sc := bufio.NewScanner(bytes.NewReader(jsonStream))
		sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		start = time.Now()
		for sc.Scan() {
			t, err := fot.UnmarshalJSONLine(sc.Bytes())
			if err != nil {
				b.Fatal(err)
			}
			chain.push(t)
		}
		if err := sc.Err(); err != nil {
			b.Fatal(err)
		}
		chain.finish(b, n)
		jsonIngestNS += int64(time.Since(start))

		// Cold starts: replay each archive from zero.
		runtime.GC()
		var d time.Duration
		binCold, d = coldStart(b, dirs[archive.CodecBinary])
		binColdNS += int64(d)
		runtime.GC()
		jsonCold, d = coldStart(b, dirs[archive.CodecJSON])
		jsonColdNS += int64(d)
	}

	// Byte identity across every source, at every profile: the serial
	// reference report over the in-memory normalized trace, the JSON
	// archive's replay, and the binary archive's replay must agree
	// exactly.
	if len(binCold) != n || len(jsonCold) != n {
		b.Fatalf("cold starts replayed %d (binary) / %d (json) tickets, want %d", len(binCold), len(jsonCold), n)
	}
	wantReport := renderReference(b, norm, cen)
	if got := renderReference(b, fot.NewTrace(binCold), cen); !bytes.Equal(got, wantReport) {
		b.Fatal("report over binary-archive replay differs from in-memory trace")
	}
	if got := renderReference(b, fot.NewTrace(jsonCold), cen); !bytes.Equal(got, wantReport) {
		b.Fatal("report over JSON-archive replay differs from in-memory trace")
	}

	iters := int64(b.N)
	binRate := float64(n) * float64(iters) * 1e9 / float64(binIngestNS)
	jsonRate := float64(n) * float64(iters) * 1e9 / float64(jsonIngestNS)
	coldSpeedup := float64(jsonColdNS) / float64(binColdNS)
	const rateGate = 1e6
	const coldGate = 20.0
	ratePass := binRate >= rateGate
	coldPass := coldSpeedup >= coldGate
	if profileName == "paper" {
		if !ratePass {
			b.Errorf("binary ingest %.0f tickets/s under the %.0f gate", binRate, rateGate)
		}
		if !coldPass {
			b.Errorf("cold-start speedup %.1fx under the %.0fx gate (json %v, binary %v)",
				coldSpeedup, coldGate, time.Duration(jsonColdNS/iters), time.Duration(binColdNS/iters))
		}
	}

	doc := map[string]interface{}{
		"benchmark":            "BenchmarkIngestWire",
		"profile":              profileName,
		"tickets":              n,
		"fold_batch":           ingestFoldBatch,
		"bin_stream_bytes":     len(binStream),
		"json_stream_bytes":    len(jsonStream),
		"bin_ingest_ns":        binIngestNS / iters,
		"json_ingest_ns":       jsonIngestNS / iters,
		"bin_tickets_per_sec":  binRate,
		"json_tickets_per_sec": jsonRate,
		"ingest_speedup":       binRate / jsonRate,
		"bin_cold_ns":          binColdNS / iters,
		"json_cold_ns":         jsonColdNS / iters,
		"cold_speedup":         coldSpeedup,
		"gates": []string{
			fmt.Sprintf("binary ingest >= %.0f tickets/s at paper profile", rateGate),
			fmt.Sprintf("cold-start speedup >= %.0fx at paper profile", coldGate),
		},
		"gate_pass":      ratePass && coldPass,
		"byte_identical": true, // enforced above; a divergence aborts the run
		"cores":          runtime.NumCPU(),
		"go":             runtime.Version(),
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_ingest.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("ingest: binary %.2fM tickets/s (json %.2fM, %.1fx smaller stream); cold start: binary %v vs json %v — %.1fx",
		binRate/1e6, jsonRate/1e6, float64(len(jsonStream))/float64(len(binStream)),
		time.Duration(binColdNS/iters), time.Duration(jsonColdNS/iters), coldSpeedup)
}
