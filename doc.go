// Package dcfail is a reproduction of the DSN'17 measurement study
// "What Can We Learn from Four Years of Data Center Hardware Failures?"
// (Wang, Zhang, Xu).
//
// The original study analyzes 290,000+ proprietary failure operation
// tickets; since neither the data nor the analysis code was released,
// this repository rebuilds the whole stack:
//
//   - internal/topo, internal/hazard, internal/workload — a synthetic
//     fleet with lifecycle hazards and workload-gated failure detection
//   - internal/inject, internal/fleetgen — correlated-failure injectors
//     (batch epidemics, PDU outages, repeat twins, the chronic BBU
//     server) and Table II-calibrated baseline generation
//   - internal/fms, internal/fmsnet, internal/archive — the failure
//     management system: ticket-lifecycle engine, a crash-safe TCP
//     collector (write-ahead log, at-least-once agent delivery with
//     dedup) with agents / operator loops / live batch alerts, and the
//     on-disk ticket archive
//   - internal/wal, internal/faultnet — the durability substrate: a
//     segmented CRC-framed group-commit write-ahead log, and a chaos
//     TCP proxy driving the crash/fault integration tests
//   - internal/stats — distributions, MLE fitting, chi-squared and KS
//     testing, AIC ranking
//   - internal/core — the paper's analyses, one per table and figure,
//     plus hypothesis-verdict and year-over-year trend summaries
//   - internal/mine — the §VII-B extension: ticket context, temporal
//     association rules, the early-warning failure predictor, streaming
//     batch alerts
//   - internal/report — text and CSV rendering of every table and figure
//
// The root package holds the experiment harness: `go test` verifies the
// paper's findings re-emerge from the synthetic trace (with ablations
// showing each finding collapses when its mechanism is switched off) and
// `go test -bench=.` regenerates every table and figure at paper scale.
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package dcfail
